/* Compiled placement kernels — bit-exact C twins of repro._kernels.pyref.
 *
 * The contract lives in pyref.py: same arithmetic, same ``inf * 0 == 0``
 * convention, same accumulation order, same journal record shapes, same
 * status codes.  Every function here operates on the very same Python
 * objects the pure backend does (the ledger's id-indexed lists, the
 * journal op list, the overcommit set), so switching backends mid-process
 * is safe and the differential suite can replay one op sequence through
 * both implementations against identical state.
 *
 * Floating-point discipline: all arithmetic is double-precision in the
 * same operation order as the Python source, and the build disables
 * FP contraction (-ffp-contract=off) so no FMA can fuse a multiply-add
 * that CPython performs as two roundings.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdlib.h>
#include <string.h>

/* Journal op tag shared with repro.topology.ledger.OP_BANDWIDTH. */
#define OP_BANDWIDTH 1

/* ------------------------------------------------------------------ */
/* helpers                                                            */
/* ------------------------------------------------------------------ */

static inline double
list_double(PyObject *list, Py_ssize_t i)
{
    return PyFloat_AsDouble(PyList_GET_ITEM(list, i));
}

static inline Py_ssize_t
list_index(PyObject *list, Py_ssize_t i)
{
    return PyLong_AsSsize_t(PyList_GET_ITEM(list, i));
}

static inline int
list_store_double(PyObject *list, Py_ssize_t i, double value)
{
    PyObject *boxed = PyFloat_FromDouble(value);
    if (boxed == NULL)
        return -1;
    /* PyList_SetItem steals the reference and releases the old item. */
    return PyList_SetItem(list, i, boxed);
}

/* ------------------------------------------------------------------ */
/* kernel 1: fused reservation adjust + feasibility check             */
/* ------------------------------------------------------------------ */

/* The shared core of ledger_adjust and commit_pipes: returns the status
 * code (0 applied / 1 refused / 2 negative), mutating used/over/ops.
 * On status 0 with ``key_ret`` non-NULL, a new reference to the boxed
 * node id is handed back so commit_pipes can reuse it as a dict key. */
static int
adjust_core(PyObject *used_up, PyObject *used_down, PyObject *cap_up,
            PyObject *cap_down, PyObject *over, PyObject *ops,
            Py_ssize_t node_id, double delta_up, double delta_down,
            int enforce, double eps, PyObject **key_ret)
{
    double prev_up = list_double(used_up, node_id);
    double prev_down = list_double(used_down, node_id);
    double new_up = prev_up + delta_up;
    double new_down = prev_down + delta_down;
    int is_over;
    PyObject *key, *record, *boxed;

    if (new_up < -eps || new_down < -eps)
        return 2;
    is_over = (new_up > list_double(cap_up, node_id) + eps ||
               new_down > list_double(cap_down, node_id) + eps);
    if (enforce && is_over)
        return 1;
    if (list_store_double(used_up, node_id, new_up > 0.0 ? new_up : 0.0) < 0)
        return -1;
    if (list_store_double(used_down, node_id,
                          new_down > 0.0 ? new_down : 0.0) < 0)
        return -1;
    key = PyLong_FromSsize_t(node_id);
    if (key == NULL)
        return -1;
    if (is_over ? PySet_Add(over, key) < 0
                : PySet_Discard(over, key) < 0) {
        Py_DECREF(key);
        return -1;
    }
    /* (OP_BANDWIDTH, node_id, prev_up, prev_down) built by hand — this
     * append runs once per reserved link. */
    record = PyTuple_New(4);
    if (record == NULL) {
        Py_DECREF(key);
        return -1;
    }
    boxed = PyLong_FromLong(OP_BANDWIDTH);
    if (boxed == NULL)
        goto fail;
    PyTuple_SET_ITEM(record, 0, boxed);
    Py_INCREF(key);
    PyTuple_SET_ITEM(record, 1, key);
    boxed = PyFloat_FromDouble(prev_up);
    if (boxed == NULL)
        goto fail;
    PyTuple_SET_ITEM(record, 2, boxed);
    boxed = PyFloat_FromDouble(prev_down);
    if (boxed == NULL)
        goto fail;
    PyTuple_SET_ITEM(record, 3, boxed);
    if (PyList_Append(ops, record) < 0)
        goto fail;
    Py_DECREF(record);
    if (key_ret != NULL)
        *key_ret = key;
    else
        Py_DECREF(key);
    return 0;

fail:
    Py_DECREF(record);
    Py_DECREF(key);
    return -1;
}

/* Both adjust entry points use METH_FASTCALL: they are the per-op hot
 * path of the replay workloads, where PyArg_ParseTuple's per-call
 * format-string walk is measurable against the tiny kernel body. */
static PyObject *
k_ledger_adjust(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    Py_ssize_t node_id;
    double delta_up, delta_down, eps;
    int enforce, status;

    if (nargs != 11) {
        PyErr_SetString(PyExc_TypeError,
                        "ledger_adjust expects 11 arguments");
        return NULL;
    }
    node_id = PyNumber_AsSsize_t(args[6], PyExc_OverflowError);
    delta_up = PyFloat_AsDouble(args[7]);
    delta_down = PyFloat_AsDouble(args[8]);
    enforce = PyObject_IsTrue(args[9]);
    eps = PyFloat_AsDouble(args[10]);
    if (enforce < 0 || PyErr_Occurred())
        return NULL;
    status = adjust_core(args[0], args[1], args[2], args[3], args[4],
                         args[5], node_id, delta_up, delta_down, enforce,
                         eps, NULL);
    if (status < 0 || PyErr_Occurred())
        return NULL;
    return PyLong_FromLong(status);
}

static PyObject *
k_temporal_adjust(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *up, *down, *max_up, *max_down, *cap_up, *cap_down;
    PyObject *over, *ops, *ratios;
    Py_ssize_t node_id, windows, base, w;
    double delta_up, delta_down, eps;
    int enforce, is_over;
    double stack_buf[128];
    double *new_up, *new_down;
    double col_max_up, col_max_down;
    PyObject *prev_up_list = NULL, *prev_down_list = NULL;
    PyObject *key = NULL, *record = NULL;

    if (nargs != 15) {
        PyErr_SetString(PyExc_TypeError,
                        "temporal_adjust expects 15 arguments");
        return NULL;
    }
    up = args[0];
    down = args[1];
    max_up = args[2];
    max_down = args[3];
    cap_up = args[4];
    cap_down = args[5];
    over = args[6];
    ops = args[7];
    ratios = args[8];
    if (!PyTuple_Check(ratios)) {
        PyErr_SetString(PyExc_TypeError,
                        "temporal_adjust: ratios must be a tuple");
        return NULL;
    }
    node_id = PyNumber_AsSsize_t(args[9], PyExc_OverflowError);
    windows = PyNumber_AsSsize_t(args[10], PyExc_OverflowError);
    delta_up = PyFloat_AsDouble(args[11]);
    delta_down = PyFloat_AsDouble(args[12]);
    enforce = PyObject_IsTrue(args[13]);
    eps = PyFloat_AsDouble(args[14]);
    if (enforce < 0 || PyErr_Occurred())
        return NULL;
    if (windows <= 64) {
        new_up = stack_buf;
        new_down = stack_buf + 64;
    }
    else {
        new_up = (double *)PyMem_Malloc(2 * windows * sizeof(double));
        if (new_up == NULL)
            return PyErr_NoMemory();
        new_down = new_up + windows;
    }
    base = node_id * windows;
    {
        double min_up = INFINITY, min_down = INFINITY;
        for (w = 0; w < windows; w++) {
            double r = PyFloat_AsDouble(PyTuple_GET_ITEM(ratios, w));
            double pu = list_double(up, base + w);
            double pd = list_double(down, base + w);
            double nu = pu + delta_up * r;
            double nd = pd + delta_down * r;
            new_up[w] = nu;
            new_down[w] = nd;
            if (nu < min_up)
                min_up = nu;
            if (nd < min_down)
                min_down = nd;
        }
        if (PyErr_Occurred())
            goto fail;
        if (delta_up < 0.0 || delta_down < 0.0) {
            /* Columns can only dip negative on a release-style delta. */
            if (min_up < -eps || min_down < -eps) {
                if (new_up != stack_buf)
                    PyMem_Free(new_up);
                return PyLong_FromLong(2);
            }
            for (w = 0; w < windows; w++) {
                if (!(new_up[w] > 0.0))
                    new_up[w] = 0.0;
                if (!(new_down[w] > 0.0))
                    new_down[w] = 0.0;
            }
        }
    }
    col_max_up = -INFINITY;
    col_max_down = -INFINITY;
    for (w = 0; w < windows; w++) {
        if (new_up[w] > col_max_up)
            col_max_up = new_up[w];
        if (new_down[w] > col_max_down)
            col_max_down = new_down[w];
    }
    is_over = (col_max_up > list_double(cap_up, node_id) + eps ||
               col_max_down > list_double(cap_down, node_id) + eps);
    if (enforce && is_over) {
        if (new_up != stack_buf)
            PyMem_Free(new_up);
        return PyLong_FromLong(1);
    }
    /* Journal the previous column + previous maxima, then write. */
    prev_up_list = PyList_New(windows);
    prev_down_list = PyList_New(windows);
    if (prev_up_list == NULL || prev_down_list == NULL)
        goto fail;
    for (w = 0; w < windows; w++) {
        PyObject *item = PyList_GET_ITEM(up, base + w);
        Py_INCREF(item);
        PyList_SET_ITEM(prev_up_list, w, item);
        item = PyList_GET_ITEM(down, base + w);
        Py_INCREF(item);
        PyList_SET_ITEM(prev_down_list, w, item);
    }
    record = Py_BuildValue("(inOOdd)", OP_BANDWIDTH, node_id, prev_up_list,
                           prev_down_list, list_double(max_up, node_id),
                           list_double(max_down, node_id));
    if (record == NULL || PyErr_Occurred())
        goto fail;
    Py_CLEAR(prev_up_list);
    Py_CLEAR(prev_down_list);
    if (PyList_Append(ops, record) < 0)
        goto fail;
    Py_CLEAR(record);
    for (w = 0; w < windows; w++) {
        if (list_store_double(up, base + w, new_up[w]) < 0 ||
            list_store_double(down, base + w, new_down[w]) < 0)
            goto fail;
    }
    if (list_store_double(max_up, node_id, col_max_up) < 0 ||
        list_store_double(max_down, node_id, col_max_down) < 0)
        goto fail;
    key = PyLong_FromSsize_t(node_id);
    if (key == NULL)
        goto fail;
    if (is_over ? PySet_Add(over, key) < 0 : PySet_Discard(over, key) < 0)
        goto fail;
    Py_CLEAR(key);
    if (new_up != stack_buf)
        PyMem_Free(new_up);
    return PyLong_FromLong(0);

fail:
    Py_XDECREF(prev_up_list);
    Py_XDECREF(prev_down_list);
    Py_XDECREF(record);
    Py_XDECREF(key);
    if (new_up != stack_buf)
        PyMem_Free(new_up);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* kernel 2: the SecondNet path-link machinery                        */
/* ------------------------------------------------------------------ */

/* Walk src->dst over the parent/depth arrays into link_ids/link_up.
 * Returns the link count, or -1 on conversion error.  Order matches
 * pyref: destination side (down) first, then source side (up). */
#define MAX_PATH_LINKS 256

static Py_ssize_t
collect_path_links(PyObject *parent, PyObject *depth, Py_ssize_t src_id,
                   Py_ssize_t dst_id, Py_ssize_t *link_ids, char *link_up)
{
    Py_ssize_t a = src_id, b = dst_id, lca, node_id, count = 0;

    while (list_index(depth, a) > list_index(depth, b))
        a = list_index(parent, a);
    while (list_index(depth, b) > list_index(depth, a))
        b = list_index(parent, b);
    while (a != b) {
        a = list_index(parent, a);
        b = list_index(parent, b);
    }
    if (PyErr_Occurred())
        return -1;
    lca = a;
    for (node_id = dst_id; node_id != lca; node_id = list_index(parent, node_id)) {
        if (count >= MAX_PATH_LINKS)
            goto overflow;
        link_ids[count] = node_id;
        link_up[count++] = 0;
    }
    for (node_id = src_id; node_id != lca; node_id = list_index(parent, node_id)) {
        if (count >= MAX_PATH_LINKS)
            goto overflow;
        link_ids[count] = node_id;
        link_up[count++] = 1;
    }
    if (PyErr_Occurred())
        return -1;
    return count;

overflow:
    PyErr_SetString(PyExc_OverflowError,
                    "path longer than the kernel's 256-link bound");
    return -1;
}

static PyObject *
k_path_link_ids(PyObject *self, PyObject *args)
{
    PyObject *parent, *depth, *result;
    Py_ssize_t src_id, dst_id, count, i;
    Py_ssize_t link_ids[MAX_PATH_LINKS];
    char link_up[MAX_PATH_LINKS];

    if (!PyArg_ParseTuple(args, "OOnn", &parent, &depth, &src_id, &dst_id))
        return NULL;
    count = collect_path_links(parent, depth, src_id, dst_id, link_ids,
                               link_up);
    if (count < 0)
        return NULL;
    result = PyList_New(count);
    if (result == NULL)
        return NULL;
    for (i = 0; i < count; i++) {
        PyObject *pair = Py_BuildValue("(nO)", link_ids[i],
                                       link_up[i] ? Py_True : Py_False);
        if (pair == NULL) {
            Py_DECREF(result);
            return NULL;
        }
        PyList_SET_ITEM(result, i, pair);
    }
    return result;
}

/* One (peer_id, bandwidth, outgoing) triple unpacked from a peers row. */
static int
unpack_peer(PyObject *row, Py_ssize_t *peer_id, double *bandwidth,
            int *outgoing)
{
    PyObject *flag;

    if (!PyTuple_Check(row) || PyTuple_GET_SIZE(row) != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "peer rows must be (peer_id, bandwidth, outgoing)");
        return -1;
    }
    *peer_id = PyLong_AsSsize_t(PyTuple_GET_ITEM(row, 0));
    *bandwidth = PyFloat_AsDouble(PyTuple_GET_ITEM(row, 1));
    flag = PyTuple_GET_ITEM(row, 2);
    *outgoing = PyObject_IsTrue(flag);
    if (*outgoing < 0 || PyErr_Occurred())
        return -1;
    return 0;
}

/* One (cost, input position, rack id) row of the rack sweep; qsort
 * with the position tiebreak is exactly a stable sort by cost. */
typedef struct {
    double cost;
    Py_ssize_t position;
    Py_ssize_t rack_id;
} RackCost;

static int
rack_cost_compare(const void *a, const void *b)
{
    const RackCost *x = (const RackCost *)a;
    const RackCost *y = (const RackCost *)b;

    if (x->cost < y->cost)
        return -1;
    if (x->cost > y->cost)
        return 1;
    return (x->position < y->position) ? -1
                                       : (x->position > y->position ? 1 : 0);
}

static PyObject *
k_rack_order(PyObject *self, PyObject *args)
{
    PyObject *parent, *free_subtree, *rack_ids, *peers, *result;
    Py_ssize_t n_racks, n_feasible = 0, n_peers, r, p;
    Py_ssize_t *peer_rack = NULL, *peer_pod = NULL;
    double *peer_bw = NULL;
    /* Per-pod cost cache for the no-hosted-peer equivalence classes. */
    Py_ssize_t *cached_pod = NULL;
    double *cached_cost = NULL;
    Py_ssize_t n_cached = 0;
    RackCost *rows = NULL;

    if (!PyArg_ParseTuple(args, "OOO!O!", &parent, &free_subtree,
                          &PyList_Type, &rack_ids, &PyList_Type, &peers))
        return NULL;
    n_racks = PyList_GET_SIZE(rack_ids);
    n_peers = PyList_GET_SIZE(peers);
    rows = (RackCost *)PyMem_Malloc(
        (n_racks > 0 ? n_racks : 1) * sizeof(RackCost));
    cached_pod = (Py_ssize_t *)PyMem_Malloc(
        (n_racks > 0 ? n_racks : 1) * sizeof(Py_ssize_t));
    cached_cost = (double *)PyMem_Malloc(
        (n_racks > 0 ? n_racks : 1) * sizeof(double));
    if (rows == NULL || cached_pod == NULL || cached_cost == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    for (r = 0; r < n_racks; r++) {
        Py_ssize_t rack_id = PyLong_AsSsize_t(PyList_GET_ITEM(rack_ids, r));

        if (rack_id == -1 && PyErr_Occurred())
            goto fail;
        if (list_index(free_subtree, rack_id) > 0) {
            rows[n_feasible].cost = 0.0;
            rows[n_feasible].position = n_feasible;
            rows[n_feasible++].rack_id = rack_id;
        }
    }
    if (PyErr_Occurred())
        goto fail;
    if (n_peers > 0) {
        peer_rack = (Py_ssize_t *)PyMem_Malloc(
            2 * n_peers * sizeof(Py_ssize_t));
        peer_bw = (double *)PyMem_Malloc(n_peers * sizeof(double));
        if (peer_rack == NULL || peer_bw == NULL) {
            PyErr_NoMemory();
            goto fail;
        }
        peer_pod = peer_rack + n_peers;
        for (p = 0; p < n_peers; p++) {
            Py_ssize_t peer_id;
            double bandwidth;
            int outgoing;

            if (unpack_peer(PyList_GET_ITEM(peers, p), &peer_id, &bandwidth,
                            &outgoing) < 0)
                goto fail;
            peer_rack[p] = list_index(parent, peer_id);
            peer_pod[p] = list_index(parent, peer_rack[p]);
            peer_bw[p] = bandwidth;
        }
        if (PyErr_Occurred())
            goto fail;
        for (r = 0; r < n_feasible; r++) {
            Py_ssize_t rack_id = rows[r].rack_id;
            Py_ssize_t pod_id = list_index(parent, rack_id);
            Py_ssize_t i;
            double cost = 0.0;
            int hosts = 0;

            for (p = 0; p < n_peers; p++) {
                if (peer_rack[p] == rack_id) {
                    hosts = 1;
                    break;
                }
            }
            if (!hosts) {
                for (i = 0; i < n_cached; i++) {
                    if (cached_pod[i] == pod_id)
                        break;
                }
                if (i < n_cached) {
                    rows[r].cost = cached_cost[i];
                    continue;
                }
            }
            for (p = 0; p < n_peers; p++) {
                if (peer_rack[p] == rack_id)
                    cost += peer_bw[p] * 2;
                else if (peer_pod[p] == pod_id)
                    cost += peer_bw[p] * 4;
                else
                    cost += peer_bw[p] * 6;
            }
            if (!hosts) {
                cached_pod[n_cached] = pod_id;
                cached_cost[n_cached++] = cost;
            }
            rows[r].cost = cost;
        }
        if (PyErr_Occurred())
            goto fail;
        qsort(rows, n_feasible, sizeof(RackCost), rack_cost_compare);
    }
    result = PyList_New(n_feasible);
    if (result == NULL)
        goto fail;
    for (r = 0; r < n_feasible; r++) {
        PyObject *boxed = PyLong_FromSsize_t(rows[r].rack_id);
        if (boxed == NULL) {
            Py_DECREF(result);
            goto fail;
        }
        PyList_SET_ITEM(result, r, boxed);
    }
    PyMem_Free(rows);
    if (peer_rack != NULL)
        PyMem_Free(peer_rack);
    if (peer_bw != NULL)
        PyMem_Free(peer_bw);
    PyMem_Free(cached_pod);
    PyMem_Free(cached_cost);
    return result;

fail:
    PyMem_Free(rows);
    if (peer_rack != NULL)
        PyMem_Free(peer_rack);
    if (peer_bw != NULL)
        PyMem_Free(peer_bw);
    PyMem_Free(cached_pod);
    PyMem_Free(cached_cost);
    return NULL;
}

/* Accumulated per-link demand, open-addressed by linear scan (the link
 * count per candidate is tiny: peers x path length). */
typedef struct {
    Py_ssize_t node_id;
    char is_up;
    double amount;
} LinkDemand;

static PyObject *
k_pipes_feasible(PyObject *self, PyObject *args)
{
    PyObject *parent, *depth, *used_up, *used_down, *cap_up, *cap_down;
    PyObject *peers;
    Py_ssize_t server_id, n_peers, p, i, n_links = 0;
    LinkDemand stack_links[MAX_PATH_LINKS];
    LinkDemand *links = stack_links;
    Py_ssize_t capacity = MAX_PATH_LINKS;

    if (!PyArg_ParseTuple(args, "OOOOOOnO!", &parent, &depth, &used_up,
                          &used_down, &cap_up, &cap_down, &server_id,
                          &PyList_Type, &peers))
        return NULL;
    n_peers = PyList_GET_SIZE(peers);
    for (p = 0; p < n_peers; p++) {
        Py_ssize_t peer_id, src_id, dst_id, count, j;
        double bandwidth;
        int outgoing;
        Py_ssize_t link_ids[MAX_PATH_LINKS];
        char link_up[MAX_PATH_LINKS];

        if (unpack_peer(PyList_GET_ITEM(peers, p), &peer_id, &bandwidth,
                        &outgoing) < 0)
            goto fail;
        if (peer_id == server_id)
            continue;
        if (outgoing) {
            src_id = server_id;
            dst_id = peer_id;
        }
        else {
            src_id = peer_id;
            dst_id = server_id;
        }
        count = collect_path_links(parent, depth, src_id, dst_id, link_ids,
                                   link_up);
        if (count < 0)
            goto fail;
        for (j = 0; j < count; j++) {
            for (i = 0; i < n_links; i++) {
                if (links[i].node_id == link_ids[j] &&
                    links[i].is_up == link_up[j]) {
                    links[i].amount += bandwidth;
                    break;
                }
            }
            if (i == n_links) {
                if (n_links == capacity) {
                    Py_ssize_t grown = capacity * 2;
                    LinkDemand *fresh =
                        (LinkDemand *)PyMem_Malloc(grown * sizeof(LinkDemand));
                    if (fresh == NULL) {
                        PyErr_NoMemory();
                        goto fail;
                    }
                    memcpy(fresh, links, n_links * sizeof(LinkDemand));
                    if (links != stack_links)
                        PyMem_Free(links);
                    links = fresh;
                    capacity = grown;
                }
                links[n_links].node_id = link_ids[j];
                links[n_links].is_up = link_up[j];
                links[n_links].amount = bandwidth;
                n_links++;
            }
        }
    }
    for (i = 0; i < n_links; i++) {
        Py_ssize_t node_id = links[i].node_id;
        double available =
            links[i].is_up
                ? list_double(cap_up, node_id) - list_double(used_up, node_id)
                : list_double(cap_down, node_id) -
                      list_double(used_down, node_id);
        if (links[i].amount > available) {
            if (links != stack_links)
                PyMem_Free(links);
            if (PyErr_Occurred())
                return NULL;
            Py_RETURN_FALSE;
        }
    }
    if (links != stack_links)
        PyMem_Free(links);
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_TRUE;

fail:
    if (links != stack_links)
        PyMem_Free(links);
    return NULL;
}

static PyObject *
k_commit_pipes(PyObject *self, PyObject *args)
{
    PyObject *parent, *depth, *used_up, *used_down, *cap_up, *cap_down;
    PyObject *over, *ops, *reserved, *peers;
    Py_ssize_t server_id, n_peers, p;
    double eps;

    if (!PyArg_ParseTuple(args, "OOOOOOOOOnO!d", &parent, &depth, &used_up,
                          &used_down, &cap_up, &cap_down, &over, &ops,
                          &reserved, &server_id, &PyList_Type, &peers, &eps))
        return NULL;
    n_peers = PyList_GET_SIZE(peers);
    for (p = 0; p < n_peers; p++) {
        Py_ssize_t peer_id, src_id, dst_id, count, j;
        double bandwidth;
        int outgoing;
        Py_ssize_t link_ids[MAX_PATH_LINKS];
        char link_up[MAX_PATH_LINKS];

        if (unpack_peer(PyList_GET_ITEM(peers, p), &peer_id, &bandwidth,
                        &outgoing) < 0)
            return NULL;
        if (peer_id == server_id)
            continue;
        if (outgoing) {
            src_id = server_id;
            dst_id = peer_id;
        }
        else {
            src_id = peer_id;
            dst_id = server_id;
        }
        count = collect_path_links(parent, depth, src_id, dst_id, link_ids,
                                   link_up);
        if (count < 0)
            return NULL;
        for (j = 0; j < count; j++) {
            double delta_up = link_up[j] ? bandwidth : 0.0;
            double delta_down = link_up[j] ? 0.0 : bandwidth;
            PyObject *key = NULL, *entry;
            int status = adjust_core(used_up, used_down, cap_up, cap_down,
                                     over, ops, link_ids[j], delta_up,
                                     delta_down, 1, eps, &key);
            if (status < 0 || PyErr_Occurred())
                return NULL;
            if (status != 0)
                return PyLong_FromLong(status);
            entry = PyDict_GetItemWithError(reserved, key); /* borrowed */
            if (entry == NULL) {
                if (PyErr_Occurred()) {
                    Py_DECREF(key);
                    return NULL;
                }
                entry = Py_BuildValue("[dd]", 0.0, 0.0);
                if (entry == NULL || PyDict_SetItem(reserved, key, entry) < 0) {
                    Py_XDECREF(entry);
                    Py_DECREF(key);
                    return NULL;
                }
                Py_DECREF(entry); /* the dict holds it now */
            }
            Py_DECREF(key);
            if (list_store_double(entry, 0,
                                  list_double(entry, 0) + delta_up) < 0 ||
                list_store_double(entry, 1,
                                  list_double(entry, 1) + delta_down) < 0)
                return NULL;
        }
    }
    return PyLong_FromLong(0);
}

/* ------------------------------------------------------------------ */
/* kernel 3: flattened-edge requirement evaluation (Eq. 1 / VOC)      */
/* ------------------------------------------------------------------ */

/* inside.get(name, 0) over the tier-count dict. */
static inline long
inside_count(PyObject *inside, PyObject *name, int *error)
{
    PyObject *value = PyDict_GetItemWithError(inside, name);
    long count;

    if (value == NULL) {
        if (PyErr_Occurred())
            *error = 1;
        return 0;
    }
    count = PyLong_AsLong(value);
    if (count == -1 && PyErr_Occurred())
        *error = 1;
    return count;
}

/* One (src, dst, send, recv, src_size, dst_size) edge row. */
static int
unpack_edge(PyObject *row, PyObject **src, PyObject **dst, double *send,
            double *recv, double *src_size, double *dst_size,
            int *src_sized, int *dst_sized)
{
    PyObject *item;

    if (!PyTuple_Check(row) || PyTuple_GET_SIZE(row) != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "edge rows must be "
                        "(src, dst, send, recv, src_size, dst_size)");
        return -1;
    }
    *src = PyTuple_GET_ITEM(row, 0);
    *dst = PyTuple_GET_ITEM(row, 1);
    *send = PyFloat_AsDouble(PyTuple_GET_ITEM(row, 2));
    *recv = PyFloat_AsDouble(PyTuple_GET_ITEM(row, 3));
    item = PyTuple_GET_ITEM(row, 4);
    *src_sized = item != Py_None;
    *src_size = *src_sized ? PyFloat_AsDouble(item) : 0.0;
    item = PyTuple_GET_ITEM(row, 5);
    *dst_sized = item != Py_None;
    *dst_size = *dst_sized ? PyFloat_AsDouble(item) : 0.0;
    if (PyErr_Occurred())
        return -1;
    return 0;
}

static PyObject *
k_eq1_requirement(PyObject *self, PyObject *args)
{
    PyObject *edges, *inside;
    Py_ssize_t n_edges, e;
    double out = 0.0, into = 0.0;
    int error = 0;

    if (!PyArg_ParseTuple(args, "O!O!", &PyTuple_Type, &edges,
                          &PyDict_Type, &inside))
        return NULL;
    n_edges = PyTuple_GET_SIZE(edges);
    for (e = 0; e < n_edges; e++) {
        PyObject *src, *dst;
        double send, recv, src_size, dst_size, src_out, dst_out;
        int src_sized, dst_sized;
        long src_in, dst_in;

        if (unpack_edge(PyTuple_GET_ITEM(edges, e), &src, &dst, &send,
                        &recv, &src_size, &dst_size, &src_sized,
                        &dst_sized) < 0)
            return NULL;
        src_in = inside_count(inside, src, &error);
        dst_in = inside_count(inside, dst, &error);
        if (error)
            return NULL;
        src_out = src_sized ? src_size - (double)src_in : INFINITY;
        dst_out = dst_sized ? dst_size - (double)dst_in : INFINITY;
        if (src_in > 0 && dst_out > 0.0) {
            double lhs = (send == 0.0 || src_in == 0) ? 0.0
                                                      : (double)src_in * send;
            double rhs = (recv == 0.0 || dst_out == 0.0) ? 0.0
                                                         : dst_out * recv;
            out += (lhs < rhs) ? lhs : rhs;
        }
        if (src_out > 0.0 && dst_in > 0) {
            double lhs = (send == 0.0 || src_out == 0.0) ? 0.0
                                                         : src_out * send;
            double rhs = (recv == 0.0 || dst_in == 0) ? 0.0
                                                      : (double)dst_in * recv;
            into += (lhs < rhs) ? lhs : rhs;
        }
    }
    return Py_BuildValue("(dd)", out, into);
}

static PyObject *
k_voc_requirement(PyObject *self, PyObject *args)
{
    PyObject *trunk, *loops, *inside, *name, *value;
    Py_ssize_t n_edges, e, pos = 0;
    double send_inside = 0.0, recv_outside = 0.0;
    double send_outside = 0.0, recv_inside = 0.0;
    double hose = 0.0;
    int error = 0;

    if (!PyArg_ParseTuple(args, "O!O!O!", &PyTuple_Type, &trunk,
                          &PyDict_Type, &loops, &PyDict_Type, &inside))
        return NULL;
    n_edges = PyTuple_GET_SIZE(trunk);
    for (e = 0; e < n_edges; e++) {
        PyObject *src, *dst;
        double send, recv, src_size, dst_size, src_out, dst_out;
        int src_sized, dst_sized;
        long src_in, dst_in;

        if (unpack_edge(PyTuple_GET_ITEM(trunk, e), &src, &dst, &send,
                        &recv, &src_size, &dst_size, &src_sized,
                        &dst_sized) < 0)
            return NULL;
        src_in = inside_count(inside, src, &error);
        dst_in = inside_count(inside, dst, &error);
        if (error)
            return NULL;
        src_out = src_sized ? src_size - (double)src_in : INFINITY;
        dst_out = dst_sized ? dst_size - (double)dst_in : INFINITY;
        send_inside += (double)src_in * send;
        send_outside += (send == 0.0) ? 0.0 : src_out * send;
        recv_inside += (double)dst_in * recv;
        recv_outside += (recv == 0.0) ? 0.0 : dst_out * recv;
    }
    /* The hose term iterates ``inside`` in dict (insertion) order,
     * exactly like the Python for-loop over inside.items(). */
    while (PyDict_Next(inside, &pos, &name, &value)) {
        PyObject *loop = PyDict_GetItemWithError(loops, name);
        long count, size, spread;
        double send;

        if (loop == NULL) {
            if (PyErr_Occurred())
                return NULL;
            continue;
        }
        send = PyFloat_AsDouble(PyTuple_GET_ITEM(loop, 0));
        size = PyLong_AsLong(PyTuple_GET_ITEM(loop, 1));
        count = PyLong_AsLong(value);
        if (PyErr_Occurred())
            return NULL;
        spread = (count < size - count) ? count : size - count;
        hose += (double)spread * send;
    }
    {
        double out = ((send_inside < recv_outside) ? send_inside
                                                   : recv_outside) +
                     hose;
        double into = ((send_outside < recv_inside) ? send_outside
                                                    : recv_inside) +
                      hose;
        return Py_BuildValue("(dd)", out, into);
    }
}

/* ------------------------------------------------------------------ */

/* neighbors[vm].append((peer, bandwidth, outgoing)) */
static int
append_peer(PyObject *neighbors, PyObject *vm, PyObject *peer,
            PyObject *bandwidth, int outgoing)
{
    PyObject *peers = PyDict_GetItemWithError(neighbors, vm);
    if (peers == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, vm);
        return -1;
    }
    PyObject *triple = PyTuple_New(3);
    if (triple == NULL)
        return -1;
    Py_INCREF(peer);
    PyTuple_SET_ITEM(triple, 0, peer);
    Py_INCREF(bandwidth);
    PyTuple_SET_ITEM(triple, 1, bandwidth);
    PyObject *flag = outgoing ? Py_True : Py_False;
    Py_INCREF(flag);
    PyTuple_SET_ITEM(triple, 2, flag);
    int rc = PyList_Append(peers, triple);
    Py_DECREF(triple);
    return rc;
}

/* sums[slot] += bandwidth (one [out, in] demand list) */
static int
bump_slot(PyObject *sums, Py_ssize_t slot, double bandwidth)
{
    double prev = PyFloat_AsDouble(PyList_GET_ITEM(sums, slot));
    if (prev == -1.0 && PyErr_Occurred())
        return -1;
    PyObject *updated = PyFloat_FromDouble(prev + bandwidth);
    if (updated == NULL)
        return -1;
    return PyList_SetItem(sums, slot, updated);
}

/* demand[vm][slot] += bandwidth (the [out, in] lists built below) */
static int
bump_demand(PyObject *demand, PyObject *vm, Py_ssize_t slot, double bandwidth)
{
    PyObject *sums = PyDict_GetItemWithError(demand, vm);
    if (sums == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, vm);
        return -1;
    }
    return bump_slot(sums, slot, bandwidth);
}

/* placed_peers(peers, vm_ids) -> (placed, hosted) */
static PyObject *
k_placed_peers(PyObject *self, PyObject *args)
{
    PyObject *peers, *vm_ids;
    if (!PyArg_ParseTuple(args, "O!O!", &PyList_Type, &peers,
                          &PyDict_Type, &vm_ids))
        return NULL;

    PyObject *placed = PyList_New(0);
    PyObject *hosted = PyDict_New();
    if (placed == NULL || hosted == NULL)
        goto fail;

    Py_ssize_t n = PyList_GET_SIZE(peers);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *row = PyList_GET_ITEM(peers, i);
        if (!PyTuple_Check(row) || PyTuple_GET_SIZE(row) != 3) {
            PyErr_SetString(PyExc_TypeError,
                            "placed_peers: peers rows must be (name, "
                            "bandwidth, outgoing) tuples");
            goto fail;
        }
        PyObject *server_id =
            PyDict_GetItemWithError(vm_ids, PyTuple_GET_ITEM(row, 0));
        if (server_id == NULL) {
            if (PyErr_Occurred())
                goto fail;
            continue;
        }
        /* hosted.setdefault(server_id, []).append(len(placed)) */
        PyObject *indices = PyDict_GetItemWithError(hosted, server_id);
        if (indices == NULL) {
            if (PyErr_Occurred())
                goto fail;
            indices = PyList_New(0);
            if (indices == NULL)
                goto fail;
            int rc = PyDict_SetItem(hosted, server_id, indices);
            Py_DECREF(indices);
            if (rc < 0)
                goto fail;
        }
        PyObject *index = PyLong_FromSsize_t(PyList_GET_SIZE(placed));
        if (index == NULL)
            goto fail;
        int rc = PyList_Append(indices, index);
        Py_DECREF(index);
        if (rc < 0)
            goto fail;
        PyObject *triple = PyTuple_New(3);
        if (triple == NULL)
            goto fail;
        Py_INCREF(server_id);
        PyTuple_SET_ITEM(triple, 0, server_id);
        PyObject *item = PyTuple_GET_ITEM(row, 1);
        Py_INCREF(item);
        PyTuple_SET_ITEM(triple, 1, item);
        item = PyTuple_GET_ITEM(row, 2);
        Py_INCREF(item);
        PyTuple_SET_ITEM(triple, 2, item);
        rc = PyList_Append(placed, triple);
        Py_DECREF(triple);
        if (rc < 0)
            goto fail;
    }
    return Py_BuildValue("(NN)", placed, hosted);

fail:
    Py_XDECREF(placed);
    Py_XDECREF(hosted);
    return NULL;
}

/* expand_edges(plans, vms) -> (neighbors, demand) */
static PyObject *
k_expand_edges(PyObject *self, PyObject *args)
{
    PyObject *plans, *vms;
    if (!PyArg_ParseTuple(args, "O!O!", &PyList_Type, &plans,
                          &PyTuple_Type, &vms))
        return NULL;

    PyObject *neighbors = PyDict_New();
    PyObject *demand = PyDict_New();
    if (neighbors == NULL || demand == NULL)
        goto fail;

    Py_ssize_t n_vms = PyTuple_GET_SIZE(vms);
    for (Py_ssize_t i = 0; i < n_vms; i++) {
        PyObject *vm = PyTuple_GET_ITEM(vms, i);
        PyObject *peers = PyList_New(0);
        if (peers == NULL)
            goto fail;
        int rc = PyDict_SetItem(neighbors, vm, peers);
        Py_DECREF(peers);
        if (rc < 0)
            goto fail;
        PyObject *sums = PyList_New(2);
        if (sums == NULL)
            goto fail;
        PyObject *zero_out = PyFloat_FromDouble(0.0);
        PyObject *zero_in = PyFloat_FromDouble(0.0);
        if (zero_out == NULL || zero_in == NULL) {
            Py_XDECREF(zero_out);
            Py_XDECREF(zero_in);
            Py_DECREF(sums);
            goto fail;
        }
        PyList_SET_ITEM(sums, 0, zero_out);
        PyList_SET_ITEM(sums, 1, zero_in);
        rc = PyDict_SetItem(demand, vm, sums);
        Py_DECREF(sums);
        if (rc < 0)
            goto fail;
    }

    Py_ssize_t n_plans = PyList_GET_SIZE(plans);
    for (Py_ssize_t p = 0; p < n_plans; p++) {
        PyObject *plan = PyList_GET_ITEM(plans, p);
        if (!PyTuple_Check(plan) || PyTuple_GET_SIZE(plan) != 4) {
            PyErr_SetString(PyExc_TypeError,
                            "expand_edges: plan rows must be (src_tier, "
                            "dst_tier, per_pair, self_loop) tuples");
            goto fail;
        }
        PyObject *src_tier = PyTuple_GET_ITEM(plan, 0);
        PyObject *dst_tier = PyTuple_GET_ITEM(plan, 1);
        PyObject *per_pair = PyTuple_GET_ITEM(plan, 2);
        if (!PyList_Check(src_tier) || !PyList_Check(dst_tier)) {
            PyErr_SetString(PyExc_TypeError,
                            "expand_edges: tier rows must be name lists");
            goto fail;
        }
        int self_loop = PyObject_IsTrue(PyTuple_GET_ITEM(plan, 3));
        if (self_loop < 0)
            goto fail;
        double amount = PyFloat_AsDouble(per_pair);
        if (amount == -1.0 && PyErr_Occurred())
            goto fail;
        Py_ssize_t n_src = PyList_GET_SIZE(src_tier);
        Py_ssize_t n_dst = PyList_GET_SIZE(dst_tier);
        for (Py_ssize_t i = 0; i < n_src; i++) {
            PyObject *src = PyList_GET_ITEM(src_tier, i);
            /* The source-side peer list and demand sums stay fixed
             * across the inner loop; hoist both dict lookups. */
            PyObject *src_peers = PyDict_GetItemWithError(neighbors, src);
            PyObject *src_sums = PyDict_GetItemWithError(demand, src);
            if (src_peers == NULL || src_sums == NULL) {
                if (!PyErr_Occurred())
                    PyErr_SetObject(PyExc_KeyError, src);
                goto fail;
            }
            for (Py_ssize_t j = 0; j < n_dst; j++) {
                if (self_loop && i == j)
                    continue;
                PyObject *dst = PyList_GET_ITEM(dst_tier, j);
                PyObject *triple = PyTuple_New(3);
                if (triple == NULL)
                    goto fail;
                Py_INCREF(dst);
                PyTuple_SET_ITEM(triple, 0, dst);
                Py_INCREF(per_pair);
                PyTuple_SET_ITEM(triple, 1, per_pair);
                Py_INCREF(Py_True);
                PyTuple_SET_ITEM(triple, 2, Py_True);
                int rc = PyList_Append(src_peers, triple);
                Py_DECREF(triple);
                if (rc == 0)
                    rc = append_peer(neighbors, dst, src, per_pair, 0);
                if (rc == 0)
                    rc = bump_slot(src_sums, 0, amount);
                if (rc == 0)
                    rc = bump_demand(demand, dst, 1, amount);
                if (rc < 0)
                    goto fail;
            }
        }
    }
    return Py_BuildValue("(NN)", neighbors, demand);

fail:
    Py_XDECREF(neighbors);
    Py_XDECREF(demand);
    return NULL;
}

/* ------------------------------------------------------------------ */

static PyMethodDef kernel_methods[] = {
    {"ledger_adjust", (PyCFunction)(void (*)(void))k_ledger_adjust,
     METH_FASTCALL,
     "Fused classic-ledger uplink adjust (see pyref.ledger_adjust)."},
    {"temporal_adjust", (PyCFunction)(void (*)(void))k_temporal_adjust,
     METH_FASTCALL,
     "Fused W-plane column adjust (see pyref.temporal_adjust)."},
    {"path_link_ids", k_path_link_ids, METH_VARARGS,
     "LCA path-link walk (see pyref.path_link_ids)."},
    {"expand_edges", k_expand_edges, METH_VARARGS,
     "Per-VM peer/demand expansion of a pipe model "
     "(see pyref.expand_edges)."},
    {"placed_peers", k_placed_peers, METH_VARARGS,
     "Placed-peer filter + hosted index map (see pyref.placed_peers)."},
    {"rack_order", k_rack_order, METH_VARARGS,
     "Stable rack ordering by pipe cost (see pyref.rack_order)."},
    {"pipes_feasible", k_pipes_feasible, METH_VARARGS,
     "Fused pipe path feasibility check (see pyref.pipes_feasible)."},
    {"commit_pipes", k_commit_pipes, METH_VARARGS,
     "Fused per-VM pipe commit loop (see pyref.commit_pipes)."},
    {"eq1_requirement", k_eq1_requirement, METH_VARARGS,
     "Flattened-edge Eq. 1 evaluation (see pyref.eq1_requirement)."},
    {"voc_requirement", k_voc_requirement, METH_VARARGS,
     "Flattened-edge VOC evaluation (see pyref.voc_requirement)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._kernels._ckernels",
    "Compiled placement kernels (bit-exact twins of repro._kernels.pyref).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernels(void)
{
    return PyModule_Create(&kernel_module);
}
