"""Pure-Python reference implementations of the placement hot kernels.

This module is the *semantic contract* of :mod:`repro._kernels`: every
function here is the bit-exact specification that the compiled backend
(``repro._kernels._ckernels``, built from ``_ckernels.c`` when
``REPRO_BUILD_EXT=1``) must reproduce — same arithmetic, same
``inf * 0 == 0`` convention, same accumulation order, same journal
record shapes.  The differential suite (``tests/kernels/``) pins the two
backends against each other, and the golden-fixture grid pins whichever
backend is active against the pre-refactor stack.

The three hot loops ``repro profile`` showed dominating trial time after
the flat-array rebuild (PRs 4-6):

``ledger_adjust`` / ``temporal_adjust``
    The fused reservation adjust + feasibility check behind
    :meth:`repro.topology.ledger.Ledger.adjust_uplink_id` and the
    W-plane :meth:`repro.temporal.admission.TemporalLedger.adjust_uplink_id`
    — including the journal append and overcommit-set maintenance, so
    the whole mutation is one call.
``path_link_ids`` / ``pipes_feasible`` / ``commit_pipes``
    The SecondNet virtual-link path machinery: the LCA path-link walk,
    the per-candidate path feasibility check over the accumulated pipe
    demands, and the per-VM pipe commit loop (path walk + per-link
    journalled adjust + reservation recording).
``eq1_requirement`` / ``voc_requirement``
    The flattened-edge Eq. 1 / footnote-7 VOC requirement evaluation
    that :mod:`repro.placement.state` compiles per tag.

All functions take the ledger's raw id-indexed lists (plus plain ints /
floats) so both backends read and mutate the very same state — there is
no marshalling layer and nothing to copy back.

Status codes shared by the adjust kernels:

=====  ==============================================================
``0``  applied (journalled)
``1``  refused — would exceed capacity under ``enforce``
``2``  invalid — reservation would become negative (caller raises)
=====  ==============================================================

Journal record shapes (tag value 1 is ``OP_BANDWIDTH`` for both
ledgers; the consuming modules assert this at import):

* classic: ``(1, node_id, prev_up, prev_down)``
* temporal: ``(1, node_id, prev_up_column, prev_down_column,
  prev_max_up, prev_max_down)``
"""

from __future__ import annotations

import math

__all__ = [
    "commit_pipes",
    "eq1_requirement",
    "expand_edges",
    "ledger_adjust",
    "path_link_ids",
    "pipes_feasible",
    "placed_peers",
    "rack_order",
    "temporal_adjust",
    "voc_requirement",
]

_INF = math.inf

# Shared with repro.topology.ledger.OP_BANDWIDTH / the temporal ledger's
# _OP_BANDWIDTH (both tag value 1); asserted by the consumers.
_OP_BANDWIDTH = 1


# ----------------------------------------------------------------------
# kernel 1: fused reservation adjust + feasibility check
# ----------------------------------------------------------------------


def ledger_adjust(
    used_up: list,
    used_down: list,
    cap_up: list,
    cap_down: list,
    over: set,
    ops: list,
    node_id: int,
    delta_up: float,
    delta_down: float,
    enforce: bool,
    eps: float,
) -> int:
    """The classic ledger's per-uplink adjust (see module docstring).

    Mutates ``used_up`` / ``used_down`` / ``over`` in place and appends
    one ``(1, node_id, prev_up, prev_down)`` journal record on success.
    The root id is the *caller's* fast path — it never reaches here.
    """
    prev_up = used_up[node_id]
    prev_down = used_down[node_id]
    new_up = prev_up + delta_up
    new_down = prev_down + delta_down
    if new_up < -eps or new_down < -eps:
        return 2
    is_over = (
        new_up > cap_up[node_id] + eps or new_down > cap_down[node_id] + eps
    )
    if enforce and is_over:
        return 1
    used_up[node_id] = new_up if new_up > 0.0 else 0.0
    used_down[node_id] = new_down if new_down > 0.0 else 0.0
    if is_over:
        over.add(node_id)
    else:
        over.discard(node_id)
    ops.append((_OP_BANDWIDTH, node_id, prev_up, prev_down))
    return 0


def temporal_adjust(
    up: list,
    down: list,
    max_up: list,
    max_down: list,
    cap_up: list,
    cap_down: list,
    over: set,
    ops: list,
    ratios: tuple,
    node_id: int,
    windows: int,
    delta_up: float,
    delta_down: float,
    enforce: bool,
    eps: float,
) -> int:
    """The W-plane fused scaled-delta adjust across one node's column.

    Node ``node_id``'s column is the contiguous slice ``[node_id * W,
    (node_id + 1) * W)`` of ``up`` / ``down``.  One journal record —
    ``(1, node_id, prev_up_column, prev_down_column, prev_max_up,
    prev_max_down)`` — undoes the whole column at once.
    """
    base = node_id * windows
    prev_up = up[base : base + windows]
    prev_down = down[base : base + windows]
    new_up = [p + delta_up * r for p, r in zip(prev_up, ratios)]
    new_down = [p + delta_down * r for p, r in zip(prev_down, ratios)]
    if delta_up < 0.0 or delta_down < 0.0:
        # Columns can only dip negative on a release-style delta.
        if min(new_up) < -eps or min(new_down) < -eps:
            return 2
        new_up = [v if v > 0.0 else 0.0 for v in new_up]
        new_down = [v if v > 0.0 else 0.0 for v in new_down]
    col_max_up = max(new_up)
    col_max_down = max(new_down)
    is_over = (
        col_max_up > cap_up[node_id] + eps
        or col_max_down > cap_down[node_id] + eps
    )
    if enforce and is_over:
        return 1
    up[base : base + windows] = new_up
    down[base : base + windows] = new_down
    ops.append(
        (
            _OP_BANDWIDTH,
            node_id,
            prev_up,
            prev_down,
            max_up[node_id],
            max_down[node_id],
        )
    )
    max_up[node_id] = col_max_up
    max_down[node_id] = col_max_down
    if is_over:
        over.add(node_id)
    else:
        over.discard(node_id)
    return 0


# ----------------------------------------------------------------------
# kernel 2: the SecondNet path-link machinery
# ----------------------------------------------------------------------


def path_link_ids(
    parent: list, depth: list, src_id: int, dst_id: int
) -> list:
    """Uplink ids crossed from server ``src_id`` to server ``dst_id``.

    ``(node_id, is_up)`` pairs: the up direction on the source side of
    the LCA, the down direction on the destination side (destination
    side first, matching the order the pointer-walk implementation
    reserved in).
    """
    a = src_id
    b = dst_id
    while depth[a] > depth[b]:
        a = parent[a]
    while depth[b] > depth[a]:
        b = parent[b]
    while a != b:
        a = parent[a]
        b = parent[b]
    lca = a
    links = []
    node_id = dst_id
    while node_id != lca:
        links.append((node_id, False))
        node_id = parent[node_id]
    node_id = src_id
    while node_id != lca:
        links.append((node_id, True))
        node_id = parent[node_id]
    return links


def expand_edges(plans: list, vms: tuple) -> tuple:
    """Per-VM peer lists and (out, in) demand of one tenant's pipe model.

    ``plans`` holds ``(src_tier, dst_tier, per_pair, self_loop)`` rows
    (:func:`repro.models.pipe.pipe_expansion`); this performs the
    quadratic per-pair expansion those rows describe without ever
    materializing ``Pipe`` objects.  Returns ``(neighbors, demand)``:
    ``neighbors[vm]`` lists ``(peer, bandwidth, outgoing)`` triples in
    pipe order — row by row, source-major, self-loops skipping the
    diagonal — and ``demand[vm]`` is the mutable ``[out, in]`` sum
    accumulated in the same order, so both match what the retired
    pipe-object path (``pipes_from_tag`` + a flattening sweep) produced
    bit for bit.  Every VM gets an entry, including pipe-less ones.
    """
    neighbors: dict = {vm: [] for vm in vms}
    demand: dict = {vm: [0.0, 0.0] for vm in vms}
    for src_tier, dst_tier, per_pair, self_loop in plans:
        for i, src in enumerate(src_tier):
            src_peers = neighbors[src]
            src_demand = demand[src]
            for j, dst in enumerate(dst_tier):
                if self_loop and i == j:
                    continue
                # (peer, bandwidth, True when this VM is the sender)
                src_peers.append((dst, per_pair, True))
                neighbors[dst].append((src, per_pair, False))
                src_demand[0] += per_pair
                demand[dst][1] += per_pair
    return neighbors, demand


def placed_peers(peers: list, vm_ids: dict) -> tuple:
    """Filter one VM's peer triples down to the already-placed ones.

    ``peers`` holds ``(name, bandwidth, outgoing)`` triples (one
    :func:`expand_edges` row); ``vm_ids`` maps placed VM names to their
    server ids.  Returns ``(placed, hosted)``: ``placed`` rewrites each
    placed peer to ``(server_id, bandwidth, outgoing)`` in peer order,
    ``hosted`` maps a server id to the ``placed`` indices it hosts (the
    equivalence-class key of the per-rack feasibility sweep).
    """
    placed: list = []
    hosted: dict = {}
    get = vm_ids.get
    for name, bandwidth, outgoing in peers:
        server_id = get(name)
        if server_id is None:
            continue
        indices = hosted.get(server_id)
        if indices is None:
            indices = hosted[server_id] = []
        indices.append(len(placed))
        placed.append((server_id, bandwidth, outgoing))
    return placed, hosted


def rack_order(
    parent: list, free_subtree: list, rack_ids: list, peers: list
) -> list:
    """Racks with free slots, in ascending pipe-cost order (stable).

    The SecondNet rack sweep: of the ``rack_ids`` whose subtree still
    has free VM slots (``free_subtree`` is the ledger's id-indexed
    aggregate), order by the bandwidth-hop cost toward the placed
    ``(peer_id, bandwidth, outgoing)`` triples — ``bandwidth * 2`` for
    a peer in the rack, ``* 4`` in the same pod, ``* 6`` across pods,
    accumulated in peer order.  Racks in the same pod hosting no placed
    peer take the same branch for every term, so they share one
    computed cost (the candidate index's equivalence classes); ties
    keep input order, i.e. exactly a stable sort of the surviving ids
    by cost.  With no peers every cost is zero and the filtered ids
    come back unreordered.
    """
    feasible = [rack_id for rack_id in rack_ids if free_subtree[rack_id] > 0]
    if not peers:
        return feasible
    peer_rack_ids = {parent[peer_id] for peer_id, _, _ in peers}
    cost_of: dict = {}
    costs = []
    for rack_id in feasible:
        pod_id = parent[rack_id]
        klass = (pod_id, rack_id if rack_id in peer_rack_ids else -1)
        cost = cost_of.get(klass)
        if cost is None:
            cost = 0.0
            for peer_id, bandwidth, _ in peers:
                peer_rack = parent[peer_id]
                if peer_rack == rack_id:
                    cost += bandwidth * 2
                elif parent[peer_rack] == pod_id:
                    cost += bandwidth * 4
                else:
                    cost += bandwidth * 6
            cost_of[klass] = cost
        costs.append(cost)
    order = list(range(len(feasible)))
    order.sort(key=costs.__getitem__)
    return [feasible[position] for position in order]


def pipes_feasible(
    parent: list,
    depth: list,
    used_up: list,
    used_down: list,
    cap_up: list,
    cap_down: list,
    server_id: int,
    peers: list,
) -> bool:
    """Can ``server_id`` host a VM whose placed peers are ``peers``?

    ``peers`` holds ``(peer_id, bandwidth, outgoing)`` triples for every
    already-placed peer; peers hosted on ``server_id`` itself are
    skipped (their pipes never leave the server).  The per-link demand
    is accumulated first (two pipes can share a link) and then checked
    against unreserved capacity, exactly like the dict accumulation in
    the scan implementation: per-key float sums happen in the same
    pipe-then-link order, and the threshold test is per-link, so the
    container's iteration order cannot change the verdict.  Path links
    are strictly below the LCA, hence never the root — capacities index
    without the root special case.
    """
    needed: dict = {}
    for peer_id, bandwidth, outgoing in peers:
        if peer_id == server_id:
            continue
        if outgoing:
            src_id, dst_id = server_id, peer_id
        else:
            src_id, dst_id = peer_id, server_id
        for link in path_link_ids(parent, depth, src_id, dst_id):
            needed[link] = needed.get(link, 0.0) + bandwidth
    for (node_id, is_up), amount in needed.items():
        available = (
            cap_up[node_id] - used_up[node_id]
            if is_up
            else cap_down[node_id] - used_down[node_id]
        )
        if amount > available:
            return False
    return True


def commit_pipes(
    parent: list,
    depth: list,
    used_up: list,
    used_down: list,
    cap_up: list,
    cap_down: list,
    over: set,
    ops: list,
    reserved: dict,
    server_id: int,
    peers: list,
    eps: float,
) -> int:
    """Reserve every pipe from a VM on ``server_id`` to its placed peers.

    ``peers`` holds ``(peer_id, bandwidth, outgoing)`` triples (zero-
    bandwidth and unplaced peers are the caller's skip; colocated peers
    — ``peer_id == server_id`` — are skipped here).  Each path link
    gets a strict journalled adjust; on the first refusal the commit
    stops with status ``1`` and the partial journal in place — the
    caller rolls back wholesale, exactly like the unfused loop.
    ``reserved`` maps ``node_id -> [up, down]`` aggregates (the
    allocation's release record) and is updated for every applied link.
    """
    for peer_id, bandwidth, outgoing in peers:
        if peer_id == server_id:
            continue
        if outgoing:
            src_id, dst_id = server_id, peer_id
        else:
            src_id, dst_id = peer_id, server_id
        for node_id, is_up in path_link_ids(parent, depth, src_id, dst_id):
            delta_up = bandwidth if is_up else 0.0
            delta_down = 0.0 if is_up else bandwidth
            status = ledger_adjust(
                used_up,
                used_down,
                cap_up,
                cap_down,
                over,
                ops,
                node_id,
                delta_up,
                delta_down,
                True,
                eps,
            )
            if status != 0:
                return status
            entry = reserved.get(node_id)
            if entry is None:
                entry = reserved[node_id] = [0.0, 0.0]
            entry[0] += delta_up
            entry[1] += delta_down
    return 0


# ----------------------------------------------------------------------
# kernel 3: flattened-edge requirement evaluation (Eq. 1 / VOC)
# ----------------------------------------------------------------------


def eq1_requirement(edges: tuple, inside: dict) -> tuple:
    """Eq. 1 over a flattened edge table (see ``placement/state.py``).

    ``edges`` rows are ``(src, dst, send, recv, src_size, dst_size)``
    with ``None`` sizes meaning unsized (external) components.  Term-
    for-term identical to :func:`repro.core.bandwidth.uplink_requirement`:
    same edge order, same ``inf * 0 == 0`` convention, same accumulation
    order.
    """
    out = 0.0
    into = 0.0
    get = inside.get
    for src, dst, send, recv, src_size, dst_size in edges:
        src_in = get(src, 0)
        dst_in = get(dst, 0)
        src_out = _INF if src_size is None else src_size - src_in
        dst_out = _INF if dst_size is None else dst_size - dst_in
        if src_in > 0 and dst_out > 0:
            lhs = 0.0 if send == 0.0 or src_in == 0.0 else src_in * send
            rhs = 0.0 if recv == 0.0 or dst_out == 0.0 else dst_out * recv
            out += lhs if lhs < rhs else rhs
        if src_out > 0 and dst_in > 0:
            lhs = 0.0 if send == 0.0 or src_out == 0.0 else src_out * send
            rhs = 0.0 if recv == 0.0 or dst_in == 0.0 else dst_in * recv
            into += lhs if lhs < rhs else rhs
    return out, into


def voc_requirement(trunk: tuple, loops: dict, inside: dict) -> tuple:
    """The footnote-7 VOC requirement over a flattened edge table.

    ``trunk`` rows match :func:`eq1_requirement`; ``loops`` maps a tier
    name to its ``(send, size)`` self-loop.  The hose term iterates
    ``inside`` in its own (insertion) order, exactly like the compiled
    closure it replaces.
    """
    send_inside = recv_outside = 0.0
    send_outside = recv_inside = 0.0
    get = inside.get
    for src, dst, send, recv, src_size, dst_size in trunk:
        src_in = get(src, 0)
        dst_in = get(dst, 0)
        src_out = _INF if src_size is None else src_size - src_in
        dst_out = _INF if dst_size is None else dst_size - dst_in
        send_inside += src_in * send
        send_outside += 0.0 if send == 0 else src_out * send
        recv_inside += dst_in * recv
        recv_outside += 0.0 if recv == 0 else dst_out * recv
    hose = 0.0
    for name, count in inside.items():
        loop = loops.get(name)
        if loop is not None:
            send, size = loop
            hose += min(count, size - count) * send
    return (
        min(send_inside, recv_outside) + hose,
        min(send_outside, recv_inside) + hose,
    )
