"""Time-varying bandwidth guarantees (paper §6 extension, TIVC-style)."""

from repro.temporal.admission import (
    TemporalAdmission,
    TemporalCluster,
    TemporalLedger,
    peak_equivalent,
)
from repro.temporal.profile import TemporalProfile, TemporalTag, diurnal_profile

__all__ = [
    "TemporalAdmission",
    "TemporalCluster",
    "TemporalLedger",
    "peak_equivalent",
    "TemporalProfile",
    "TemporalTag",
    "diurnal_profile",
]
