"""Time-varying bandwidth profiles (paper §6 extension).

"Smaller-scale load variations, which do not trigger scaling, can vary
bandwidth requirements over time; CloudMirror can adopt existing
approaches, such as workload profiling [18] or history-based prediction
[45], to be even more efficient."

A :class:`TemporalProfile` is a cyclic sequence of non-negative scaling
factors — one per time window (e.g., 24 hourly factors) — applied to all
of a TAG's guarantees.  A :class:`TemporalTag` couples a base TAG with a
profile; window ``w`` of the tenant demands ``base.scaled(factors[w])``.

The classic (time-unaware) system must reserve each tenant's *peak*
around the clock; window-aware admission lets day-peaking and
night-peaking tenants share the same links (the TIVC insight of [18]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.tag import Tag
from repro.errors import SimulationError

__all__ = ["TemporalProfile", "TemporalTag", "diurnal_profile"]


@dataclass(frozen=True)
class TemporalProfile:
    """Cyclic per-window demand scaling factors."""

    factors: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.factors:
            raise SimulationError("a profile needs at least one window")
        for factor in self.factors:
            if not math.isfinite(factor) or factor < 0:
                raise SimulationError(
                    f"profile factors must be finite and >= 0, got {factor!r}"
                )

    @property
    def windows(self) -> int:
        return len(self.factors)

    @property
    def peak(self) -> float:
        return max(self.factors)

    @property
    def mean(self) -> float:
        return sum(self.factors) / len(self.factors)

    @classmethod
    def flat(cls, windows: int, factor: float = 1.0) -> "TemporalProfile":
        return cls(tuple([factor] * windows))


def diurnal_profile(
    windows: int = 24,
    *,
    peak_window: int = 14,
    trough: float = 0.3,
    sharpness: float = 2.0,
) -> TemporalProfile:
    """A smooth day/night cycle peaking at ``peak_window`` (factor 1.0).

    ``trough`` is the off-peak floor; ``sharpness`` narrows the peak.
    Shifting ``peak_window`` by half the cycle gives the anti-correlated
    profile of a nightly batch job.
    """
    if not 0 < trough <= 1.0:
        raise SimulationError("trough must be in (0, 1]")
    phases = 2.0 * np.pi * (np.arange(windows) - peak_window) / windows
    shape = ((1.0 + np.cos(phases)) / 2.0) ** sharpness
    factors = trough + (1.0 - trough) * shape
    return TemporalProfile(tuple(float(f) for f in factors))


@dataclass(frozen=True)
class TemporalTag:
    """A tenant whose guarantees follow a temporal profile."""

    base: Tag
    profile: TemporalProfile

    def at(self, window: int) -> Tag:
        """The tenant's TAG during one time window."""
        return self.base.scaled(self.profile.factors[window % self.profile.windows])

    def peak_tag(self) -> Tag:
        """What a time-unaware system must reserve around the clock."""
        return self.base.scaled(self.profile.peak)

    @property
    def windows(self) -> int:
        return self.profile.windows

    def window_requirements(
        self, counts, requirement
    ) -> Sequence:
        """Per-window uplink requirements for a fixed VM split."""
        return [
            requirement(self.at(window), counts)
            for window in range(self.windows)
        ]
