"""Window-aware admission control for time-varying tenants (§6 extension).

The classic system reserves every tenant's peak demand around the clock.
Here the datacenter keeps **W bandwidth planes** — one reservation state
per time window over the shared topology — and the unmodified CloudMirror
algorithm runs against a :class:`TemporalLedger`:

* every bandwidth adjustment CM makes (derived from the tenant's *peak*
  TAG) is applied to each plane scaled by that window's fraction of the
  peak (Eq. 1 is linear in a uniform guarantee scaling, so plane ``w``
  needs exactly ``factor_w / peak`` of the peak requirement);
* availability and overcommit are the worst case across planes, so
  placement decisions see exactly the binding window.

A day-peaking web service and a night-peaking batch job then overlap on
the same oversubscribed links — their binding windows differ — which the
peak-everywhere accounting forbids.  With flat profiles every plane is
identical and the system degenerates to the classic one.

Unlike the pre-PR-5 facade (frozen under
``benchmarks/_legacy/temporal_admission.py``), the ledger does **not**
multiplex W :class:`~repro.topology.ledger.Ledger` objects.  All W
planes live in one contiguous state block per direction over the shared
:class:`~repro.topology.flat.FlatTopology` — each node's W-window column
is one contiguous slice, and :meth:`TemporalLedger.plane_matrices`
exposes the block as ``(W × num_nodes)`` numpy matrices for bulk
readers — plus an incrementally-maintained per-node worst-case cache,
so:

* ``available_*``/``nominal_*``/``reserved_*`` are a single cache load
  (capacity minus the cross-plane maximum) instead of a generator
  expression ``min`` over W per-plane method calls;
* ``adjust_uplink_id`` is one fused scaled-delta + feasibility check
  across the whole plane column, journalled as a single tuple undo
  record (previous column + previous maxima) — no per-plane journals
  and no partial-failure rollback loop;
* ``window_utilization`` reads level id slices off the flat topology
  instead of walking ``Node`` objects.

VM slots are time-invariant, so slot state stays scalar — the very
same :class:`~repro.topology.ledger.SlotAccountingMixin` the classic
ledger uses.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import _kernels
from repro.core.constants import EPSILON
from repro.errors import LedgerError, SimulationError
from repro.obs import core as _obs
from repro.placement.base import Placement, Rejection
from repro.placement.cloudmirror import CloudMirrorPlacer
from repro.temporal.profile import TemporalProfile, TemporalTag
from repro.topology.builder import DatacenterSpec, three_level_tree
from repro.topology.ledger import OP_MASK, OP_SLOTS, Journal, SlotAccountingMixin
from repro.topology.tree import Node, Topology

__all__ = [
    "TemporalLedger",
    "TemporalPlaneView",
    "TemporalAdmission",
    "TemporalCluster",
    "peak_equivalent",
]

_EPSILON = EPSILON

# Journal op tags.  Slot records come from SlotAccountingMixin under
# the shared ``OP_SLOTS`` tag; the bandwidth record is this ledger's
# own shape —
#   (_OP_BANDWIDTH, node_id, prev_up_column, prev_down_column,
#    prev_max_up, prev_max_down)
# — one record undoing the mutation on every plane at once.
_OP_SLOTS = OP_SLOTS
_OP_BANDWIDTH = 1

# The temporal adjust kernel journals _OP_BANDWIDTH records itself; the
# tag value is part of the kernel contract (see repro._kernels.pyref).
assert _OP_BANDWIDTH == 1


class TemporalPlaneView:
    """Read-only view of one window's reservations (tests, benchmarks)."""

    __slots__ = ("_ledger", "_window")

    def __init__(self, ledger: "TemporalLedger", window: int) -> None:
        self._ledger = ledger
        self._window = window

    def reserved_up(self, node: Node) -> float:
        return self.reserved_up_id(node.node_id)

    def reserved_up_id(self, node_id: int) -> float:
        ledger = self._ledger
        if node_id == ledger._root_id:
            return 0.0
        return ledger._up[node_id * ledger.windows + self._window]

    def reserved_down(self, node: Node) -> float:
        return self.reserved_down_id(node.node_id)

    def reserved_down_id(self, node_id: int) -> float:
        ledger = self._ledger
        if node_id == ledger._root_id:
            return 0.0
        return ledger._down[node_id * ledger.windows + self._window]

    def reserved_at_level(self, level: int) -> float:
        ledger = self._ledger
        up = ledger._up
        windows = ledger.windows
        window = self._window
        root_id = ledger._root_id
        return sum(
            up[node_id * windows + window]
            for node_id in ledger.flat.level_ids[level]
            if node_id != root_id
        )


class TemporalLedger(SlotAccountingMixin):
    """W bandwidth planes on one contiguous per-direction state block.

    Duck-types the :class:`repro.topology.ledger.Ledger` surface the
    placement machinery uses.  Slots are global; bandwidth deltas apply
    to every plane scaled by the *active ratios* (the current tenant's
    per-window fraction of its peak), which the caller must set via
    :meth:`set_ratios` before placing or releasing a tenant —
    reservations are plane-scaled per tenant, so release must run under
    the same ratios as the original placement.
    """

    def __init__(self, topology: Topology, windows: int) -> None:
        if windows < 1:
            raise SimulationError("need at least one time window")
        _kernels.note_backend()
        self.topology = topology
        # The flat array view the placement machinery drives its path
        # walks from (shared by every plane; structure is per-topology).
        flat = topology.flat
        self.flat = flat
        self.windows = windows
        size = flat.size
        self._root_id = flat.root_id
        # Local aliases of the flat capacity arrays: the availability
        # queries below are the placer's innermost loop.
        self._cap_up = flat.cap_up
        self._cap_down = flat.cap_down
        self._nom_up = flat.nominal_up
        self._nom_down = flat.nominal_down
        # The reservation block: node ``i``'s W-window column is the
        # contiguous slice ``[i*W, (i+1)*W)``, so the fused adjust reads
        # and writes one slice; plane ``w`` is the stride-W view
        # ``[w::W]`` (see plane_matrices / TemporalPlaneView).
        self._up = [0.0] * (size * windows)
        self._down = [0.0] * (size * windows)
        # Cross-plane maxima per node, maintained on every mutation so
        # worst-case availability queries are one load + subtraction.
        self._max_up = [0.0] * size
        self._max_down = [0.0] * size
        self._used_slots = [0] * size
        self._free_subtree = list(flat.subtree_slots)
        # Effective slot capacity (see Ledger): aliases the immutable
        # column until a FailureMask attaches its own mutable copy.
        self.slot_cap = flat.slots
        self._over: set[int] = set()
        self._ratios: tuple[float, ...] = tuple([1.0] * windows)
        # Ratio memo: profiles hash by their factors tuple, and the
        # window-to-peak ratios are a pure function of them, so a pool
        # of ~80 recurring tenants computes each division exactly once
        # over a million-event service run.  ``_active_profile`` is the
        # identity fast path for back-to-back activations of the same
        # tenant (cohort admission sorts consecutive same-profile runs).
        self._ratio_cache: dict[TemporalProfile, tuple[float, ...]] = {}
        self._active_profile: TemporalProfile | None = None
        self._planes = tuple(
            TemporalPlaneView(self, window) for window in range(windows)
        )

    @property
    def planes(self) -> tuple[TemporalPlaneView, ...]:
        """Per-window read views (the legacy per-plane-Ledger surface)."""
        return self._planes

    def plane_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """``(W × num_nodes)`` numpy snapshots of both direction blocks."""
        shape = (self.flat.size, self.windows)
        return (
            np.asarray(self._up).reshape(shape).T.copy(),
            np.asarray(self._down).reshape(shape).T.copy(),
        )

    # ------------------------------------------------------------------
    def set_ratios(self, profile: TemporalProfile) -> None:
        """Activate one tenant's window-to-peak ratios (memoized)."""
        if profile is self._active_profile:
            return
        ratios = self._ratio_cache.get(profile)
        if ratios is None:
            if profile.windows != self.windows:
                raise SimulationError(
                    f"profile has {profile.windows} windows, ledger has "
                    f"{self.windows}"
                )
            peak = profile.peak
            if peak <= 0:
                raise SimulationError("profile peak must be positive")
            ratios = tuple(factor / peak for factor in profile.factors)
            self._ratio_cache[profile] = ratios
            c = _obs.counters
            if c is not None:
                c.bump("temporal.ratio_compiles")
        self._ratios = ratios
        self._active_profile = profile

    # ------------------------------------------------------------------
    # Ledger surface used by placement: queries (slot queries come from
    # SlotAccountingMixin)
    # ------------------------------------------------------------------
    def available_up(self, node: Node) -> float:
        return self.available_up_id(node.node_id)

    def available_up_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self._cap_up[node_id] - self._max_up[node_id]

    def available_down(self, node: Node) -> float:
        return self.available_down_id(node.node_id)

    def available_down_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self._cap_down[node_id] - self._max_down[node_id]

    def nominal_available_up(self, node: Node) -> float:
        return self.nominal_available_up_id(node.node_id)

    def nominal_available_up_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self._nom_up[node_id] - self._max_up[node_id]

    def nominal_available_down(self, node: Node) -> float:
        return self.nominal_available_down_id(node.node_id)

    def nominal_available_down_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self._nom_down[node_id] - self._max_down[node_id]

    def reserved_up(self, node: Node) -> float:
        node_id = node.node_id
        return 0.0 if node_id == self._root_id else self._max_up[node_id]

    def reserved_down(self, node: Node) -> float:
        node_id = node.node_id
        return 0.0 if node_id == self._root_id else self._max_down[node_id]

    def reserved_at_level(self, level: int) -> float:
        """Worst-case (across planes) reserved up-bandwidth at one level."""
        return max(plane.reserved_at_level(level) for plane in self._planes)

    def window_level_fraction(self, window: int, level: int) -> float:
        """Reserved fraction of one level's aggregate capacity, one window.

        Level slices come straight off the flat topology's ``level_ids``;
        summation order matches the legacy ``level_nodes`` walk so the
        reported fractions are bit-stable across the rebuild.
        """
        flat = self.flat
        root_id = self._root_id
        ids = [i for i in flat.level_ids[level] if i != root_id]
        capacity = sum(flat.cap_up[i] for i in ids)
        if capacity == 0 or math.isinf(capacity):
            return 0.0
        up = self._up
        windows = self.windows
        return sum(up[i * windows + window] for i in ids) / capacity

    def has_overcommit(self) -> bool:
        return bool(self._over)

    def overcommitted_nodes(self) -> frozenset[int]:
        return frozenset(self._over)

    def _update_overcommit(
        self, node_id: int, max_up: float, max_down: float
    ) -> None:
        """Refresh ``node_id``'s overcommit membership from its new maxima."""
        if (
            max_up > self._cap_up[node_id] + _EPSILON
            or max_down > self._cap_down[node_id] + _EPSILON
        ):
            self._over.add(node_id)
        else:
            self._over.discard(node_id)

    # ------------------------------------------------------------------
    # mutations (journalled; slot mutations come from SlotAccountingMixin)
    # ------------------------------------------------------------------
    def adjust_uplink(
        self,
        node: Node,
        delta_up: float,
        delta_down: float,
        journal: Journal,
        enforce: bool = True,
    ) -> bool:
        return self.adjust_uplink_id(
            node.node_id, delta_up, delta_down, journal, enforce
        )

    def adjust_uplink_id(
        self,
        node_id: int,
        delta_up: float,
        delta_down: float,
        journal: Journal,
        enforce: bool = True,
    ) -> bool:
        """One fused scaled-delta + feasibility check across all planes.

        The column read-modify-write (scaled deltas, negativity check,
        clamp, maxima, journal record) runs in the active
        :mod:`repro._kernels` backend; this wrapper keeps the root fast
        path, the error raise, and the obs counter.
        """
        if node_id == self._root_id:
            return True
        status = _kernels.temporal_adjust(
            self._up,
            self._down,
            self._max_up,
            self._max_down,
            self._cap_up,
            self._cap_down,
            self._over,
            journal.ops,
            self._ratios,
            node_id,
            self.windows,
            delta_up,
            delta_down,
            enforce,
            _EPSILON,
        )
        if status == 2:
            name = self.flat.node_of[node_id].name  # type: ignore[union-attr]
            raise LedgerError(
                f"uplink reservation on {name!r} would become negative"
            )
        if status != 0:
            return False
        c = _obs.counters
        if c is not None:
            c.bump("temporal.journal_ops")
        return True

    def release_uplink(self, node: Node, up: float, down: float) -> None:
        self.release_uplink_id(node.node_id, up, down)

    def release_uplink_id(self, node_id: int, up: float, down: float) -> None:
        """Unjournalled scaled release on every plane (departure path)."""
        if node_id == self._root_id:
            return
        windows = self.windows
        base = node_id * windows
        ratios = self._ratios
        new_up = [
            p - up * r
            for p, r in zip(self._up[base : base + windows], ratios)
        ]
        new_down = [
            p - down * r
            for p, r in zip(self._down[base : base + windows], ratios)
        ]
        if min(new_up) < -_EPSILON or min(new_down) < -_EPSILON:
            name = self.flat.node_of[node_id].name  # type: ignore[union-attr]
            raise LedgerError(
                f"releasing more bandwidth than reserved on {name!r}"
            )
        new_up = [v if v > 0.0 else 0.0 for v in new_up]
        new_down = [v if v > 0.0 else 0.0 for v in new_down]
        self._up[base : base + windows] = new_up
        self._down[base : base + windows] = new_down
        max_up = max(new_up)
        max_down = max(new_down)
        self._max_up[node_id] = max_up
        self._max_down[node_id] = max_down
        self._update_overcommit(node_id, max_up, max_down)

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def rollback(self, journal: Journal, savepoint: int = 0) -> None:
        """Undo journalled operations back to ``savepoint`` (in reverse)."""
        ops = journal.ops
        windows = self.windows
        while len(ops) > savepoint:
            op = ops.pop()
            tag = op[0]
            if tag == _OP_SLOTS:
                self._apply_slots(op[1], -op[2])
            elif tag == _OP_BANDWIDTH:
                node_id = op[1]
                base = node_id * windows
                self._up[base : base + windows] = op[2]
                self._down[base : base + windows] = op[3]
                max_up = op[4]
                max_down = op[5]
                self._max_up[node_id] = max_up
                self._max_down[node_id] = max_down
                self._update_overcommit(node_id, max_up, max_down)
            elif tag == OP_MASK:
                self._failure_mask._undo(op)
            else:  # pragma: no cover - defensive
                raise LedgerError(f"unknown journal op {op!r}")


@dataclass
class TemporalAdmission:
    """A live window-aware tenant."""

    tenant: TemporalTag
    allocation: object


class TemporalCluster:
    """CloudMirror admission over W per-window bandwidth planes."""

    def __init__(
        self,
        spec: DatacenterSpec | None,
        windows: int,
        *,
        topology: Topology | None = None,
        use_candidate_index: bool = True,
    ) -> None:
        self.spec = spec
        self.windows = windows
        # An explicit topology (heterogeneous fabrics, pruned failure
        # references) overrides the spec-built symmetric tree.
        if topology is None:
            if spec is None:
                raise SimulationError("need a DatacenterSpec or a topology")
            topology = three_level_tree(spec)
        self.topology: Topology = topology
        self.ledger = TemporalLedger(self.topology, windows)
        # The candidate index attaches to the temporal ledger the same
        # way it does to the classic one: slots are plane-invariant, so
        # admissions and departures across windows share one index.
        self.placer = CloudMirrorPlacer(  # type: ignore[arg-type]
            self.ledger, use_candidate_index=use_candidate_index
        )
        self._admitted: dict[int, TemporalAdmission] = {}
        # ``TemporalTag.peak_tag()`` builds a fresh scaled Tag per call;
        # memoizing it per tenant keeps the placer's per-tag-identity
        # caches (compiled requirement closures, candidate plans) hot
        # when the same pool tenant arrives again and again.
        self._peak_tags: "weakref.WeakKeyDictionary[TemporalTag, object]" = (
            weakref.WeakKeyDictionary()
        )
        self.rejected = 0

    @property
    def admitted(self) -> list[TemporalAdmission]:
        """Live admissions, in admission order."""
        return list(self._admitted.values())

    def _peak_tag(self, tenant: TemporalTag):
        tag = self._peak_tags.get(tenant)
        if tag is None:
            tag = tenant.peak_tag()
            self._peak_tags[tenant] = tag
        return tag

    def admit(self, tenant: TemporalTag) -> TemporalAdmission | None:
        """Place one time-varying tenant; None when any window overflows."""
        if tenant.profile.windows != self.windows:
            raise SimulationError(
                f"tenant has {tenant.profile.windows} windows, cluster has "
                f"{self.windows}"
            )
        self.ledger.set_ratios(tenant.profile)
        result = self.placer.place(self._peak_tag(tenant))
        if isinstance(result, Rejection):
            self.rejected += 1
            return None
        assert isinstance(result, Placement)
        admission = TemporalAdmission(tenant, result.allocation)
        self._admitted[id(admission)] = admission
        return admission

    def admit_cohort(
        self, tenants: Sequence[TemporalTag]
    ) -> list[TemporalAdmission | None]:
        """Admit one arrival cohort with a fused W-plane feasibility pass.

        Decision-identical to :meth:`admit` called per tenant in arrival
        order (a test pins this): VM slots are plane-invariant, so one
        running root free-slot count screens the whole batch — a tenant
        whose VM count exceeds it is rejected without activating its
        ratios or walking any plane (the placer's own first gate would
        reject it identically) — and survivors place under the memoized
        ratios, paying the per-plane work only for tenants that can
        actually fit.
        """
        ledger = self.ledger
        root_id = ledger.flat.root_id
        free = ledger.free_slots_id(root_id)
        results: list[TemporalAdmission | None] = []
        for tenant in tenants:
            if tenant.profile.windows != self.windows:
                raise SimulationError(
                    f"tenant has {tenant.profile.windows} windows, cluster "
                    f"has {self.windows}"
                )
            tag = self._peak_tag(tenant)
            if tag.size > free:  # type: ignore[attr-defined]
                self.rejected += 1
                results.append(None)
                continue
            ledger.set_ratios(tenant.profile)
            result = self.placer.place(tag)
            if isinstance(result, Rejection):
                self.rejected += 1
                results.append(None)
                continue
            assert isinstance(result, Placement)
            admission = TemporalAdmission(tenant, result.allocation)
            self._admitted[id(admission)] = admission
            results.append(admission)
            free = ledger.free_slots_id(root_id)
        return results

    def depart(self, admission: TemporalAdmission) -> None:
        # Release must run under the departing tenant's own ratios: its
        # plane reservations were scaled by them at placement time.
        if id(admission) not in self._admitted:
            raise SimulationError("departing tenant was never admitted")
        self.ledger.set_ratios(admission.tenant.profile)
        admission.allocation.release()
        del self._admitted[id(admission)]

    # ------------------------------------------------------------------
    def window_utilization(self, window: int, level: int) -> float:
        """Reserved fraction of one level's aggregate capacity, one window."""
        return self.ledger.window_level_fraction(window, level)


def peak_equivalent(tenant: TemporalTag) -> TemporalTag:
    """The time-unaware version of a tenant (peak in every window)."""
    return TemporalTag(
        tenant.base,
        TemporalProfile.flat(tenant.profile.windows, tenant.profile.peak),
    )
