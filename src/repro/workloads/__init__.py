"""Workload substrates: tenant pools, patterns, scaling, survey data."""

from repro.workloads import patterns
from repro.workloads.bing import bing_pool, pool_statistics
from repro.workloads.hpcloud import hpcloud_pool
from repro.workloads.scaling import pool_scale_factor, scale_pool
from repro.workloads.store import dump_pool, load_pool, pool_from_json, pool_to_json
from repro.workloads.survey import (
    DATACENTERS,
    WORKLOADS,
    DatacenterProvision,
    WorkloadRatio,
    datacenter_ratios,
)
from repro.workloads.synthetic import synthetic_pool

__all__ = [
    "DATACENTERS",
    "WORKLOADS",
    "DatacenterProvision",
    "WorkloadRatio",
    "bing_pool",
    "datacenter_ratios",
    "dump_pool",
    "load_pool",
    "pool_from_json",
    "pool_to_json",
    "hpcloud_pool",
    "patterns",
    "pool_scale_factor",
    "pool_statistics",
    "scale_pool",
    "synthetic_pool",
]
