"""B_max demand scaling (paper §5.1).

"The bandwidth values in the bing.com workload dataset are relative, not
absolute.  We scale the bandwidth values such that the average per-VM
demand (B_vm) of the tenant with the largest B_vm becomes the target
per-VM bandwidth (B_max)."
"""

from __future__ import annotations

from typing import Sequence

from repro.core.tag import Tag
from repro.errors import SimulationError

__all__ = ["scale_pool", "pool_scale_factor"]


def pool_scale_factor(pool: Sequence[Tag], bmax: float) -> float:
    """The single factor that maps the pool's relative demands to Mbps."""
    if not pool:
        raise SimulationError("cannot scale an empty pool")
    if bmax <= 0:
        raise SimulationError(f"B_max must be positive, got {bmax!r}")
    largest = max(tag.mean_per_vm_demand() for tag in pool)
    if largest <= 0:
        raise SimulationError("pool has no bandwidth demand to scale")
    return bmax / largest


def scale_pool(pool: Sequence[Tag], bmax: float) -> list[Tag]:
    """Scale every tenant by the common :func:`pool_scale_factor`."""
    factor = pool_scale_factor(pool, bmax)
    return [tag.scaled(factor) for tag in pool]
