"""Fig. 1 data: bandwidth-to-CPU ratios of workloads and datacenters.

Fig. 1(a) plots, for ten cloud workloads, the ratio of aggregate
application throughput (Mbps) to aggregate CPU consumption (GHz); batch
jobs in red, interactive applications in blue.  Fig. 1(b) plots the
*provisioned* ratio for four datacenter environments at the server, ToR
and aggregation levels.

The paper sources these from public benchmark reports ([18-24, 28] etc.)
and two production datacenter descriptions (Facebook [2, 25] and the
synthetic topology of Oktopus/Proteus [4, 18]).  The exact figure values
are only published as a chart; the numbers embedded here are
reconstructions from the cited benchmark reports, chosen to preserve the
figure's two claims, which the Fig. 1 experiment asserts:

1. interactive workloads have similar-or-higher BW:CPU ratios than the
   batch jobs (the blue range overlaps/exceeds the red), and
2. datacenters provision enough at the server level but fall short of
   most workload demands at the ToR and aggregation levels.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WorkloadRatio",
    "DatacenterProvision",
    "WORKLOADS",
    "DATACENTERS",
    "datacenter_ratios",
]


@dataclass(frozen=True)
class WorkloadRatio:
    """One Fig. 1(a) bar: a BW:CPU demand range in Mbps/GHz."""

    name: str
    kind: str  # "batch" or "interactive"
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.kind not in ("batch", "interactive"):
            raise ValueError(f"kind must be batch|interactive, got {self.kind!r}")
        if not 0 < self.low <= self.high:
            raise ValueError("need 0 < low <= high")


# Fig. 1(a): "the interactive workloads (Redis to Cassandra) have similar
# or higher ratios of network-to-CPU compared to the batch jobs (Hadoop
# and Hive)".  Ranges reconstructed from the cited reports: Redis [19],
# VoltDB [20], Vyatta [21], Ally [22], HTTP streaming [23], Cassandra/
# Netflix [24], Wikipedia [17], Rackspace [28]; Hadoop and Hive from [18].
WORKLOADS: tuple[WorkloadRatio, ...] = (
    WorkloadRatio("hadoop", "batch", 8.0, 90.0),
    WorkloadRatio("hive", "batch", 5.0, 60.0),
    WorkloadRatio("redis", "interactive", 150.0, 4200.0),
    WorkloadRatio("voltdb", "interactive", 90.0, 1800.0),
    WorkloadRatio("vyatta", "interactive", 400.0, 6000.0),
    WorkloadRatio("ally", "interactive", 60.0, 700.0),
    WorkloadRatio("http-streaming", "interactive", 120.0, 1500.0),
    WorkloadRatio("wikipedia", "interactive", 40.0, 350.0),
    WorkloadRatio("rackspace-oltp", "interactive", 70.0, 900.0),
    WorkloadRatio("cassandra", "interactive", 100.0, 1100.0),
)


@dataclass(frozen=True)
class DatacenterProvision:
    """Provisioned resources of one datacenter (Fig. 1(b) input).

    CPU is expressed as aggregate GHz per server (cores x clock).  Uplinks
    in Mbps.  The level ratios follow the paper's footnote 3: at the
    server level, NIC bandwidth over per-server CPU; at ToR/agg, the
    uplink bandwidth normalized by the total CPU under the switch.
    """

    name: str
    server_ghz: float
    servers_per_rack: int
    racks_per_agg: int
    nic_mbps: float
    tor_uplink_mbps: float
    agg_uplink_mbps: float


# Facebook figures follow [2, 25]: 10G servers, high (up to 40:1 at the
# oversubscribed generation) core oversubscription; the "oktopus-sim" DC
# is the synthetic topology simulated in [4, 18]; two further cloud DCs
# bracket typical public-cloud provisioning.
DATACENTERS: tuple[DatacenterProvision, ...] = (
    DatacenterProvision("facebook", 2.4 * 16, 44, 4, 10_000.0, 40_000.0, 40_000.0),
    DatacenterProvision("oktopus-sim", 2.0 * 8, 40, 20, 1_000.0, 10_000.0, 20_000.0),
    DatacenterProvision("cloud-a", 2.6 * 12, 32, 8, 10_000.0, 80_000.0, 160_000.0),
    DatacenterProvision("cloud-b", 2.4 * 24, 24, 12, 10_000.0, 40_000.0, 60_000.0),
)


def datacenter_ratios(dc: DatacenterProvision) -> dict[str, float]:
    """BW:CPU (Mbps/GHz) at the server, ToR and aggregation levels."""
    rack_ghz = dc.server_ghz * dc.servers_per_rack
    agg_ghz = rack_ghz * dc.racks_per_agg
    return {
        "server": dc.nic_mbps / dc.server_ghz,
        "tor": dc.tor_uplink_mbps / rack_ghz,
        "aggregation": dc.agg_uplink_mbps / agg_ghz,
    }
