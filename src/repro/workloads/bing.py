"""A synthetic stand-in for the bing.com service dataset (paper §5).

The real dataset (from Bodik et al. [11]) is proprietary.  The paper
states its statistics precisely, and this generator is built to match
them:

* 80 tenants after removing the common management/logging services,
* mean tenant size 57 VMs, several tenants over 200 VMs, largest 732,
* service (tier) sizes "from one to a few hundred VMs"; typical tier
  size K ~= 10 and tier count T ~= 5,
* diverse patterns: linear, star, ring, mesh, plus MapReduce-like
  services with large intra-service demands,
* high inter-component traffic: ~91% of each component's traffic is
  inter-component on average (85% excluding management), 65% of the
  total (37% excluding management),
* bandwidth values are *relative*; experiments scale them via
  ``repro.workloads.scaling`` so the most demanding tenant's mean per-VM
  demand equals B_max.

Determinism: the pool is a pure function of the seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.tag import Tag
from repro.workloads import patterns

__all__ = ["bing_pool", "pool_statistics"]

_PATTERNS = ("linear", "star", "ring", "mesh", "mapreduce", "three_tier")
_PATTERN_WEIGHTS = (0.24, 0.20, 0.10, 0.12, 0.16, 0.18)

# Relative per-VM demand draws.  Lognormal keeps demands positive and
# heavy-tailed, like the published per-service demand spread.
_EDGE_MU, _EDGE_SIGMA = 0.0, 0.8
# Intra-service hoses are rare and small except for MapReduce-like jobs,
# keeping the per-component inter-traffic fraction near the published 91%.
_SELF_LOOP_PROB = 0.25
_SELF_LOOP_SCALE = 0.15
_MAPREDUCE_INTRA_SCALE = 1.0


def bing_pool(seed: int = 2014, tenants: int = 80) -> list[Tag]:
    """Generate the bing-like tenant pool."""
    rng = np.random.default_rng(seed)
    sizes = _tenant_sizes(rng, tenants)
    pool = [
        _make_tenant(rng, f"bing-{i:03d}", size)
        for i, size in enumerate(sizes)
    ]
    return pool


def _tenant_sizes(rng: np.random.Generator, tenants: int) -> list[int]:
    """Tenant sizes: heavy-tailed, mean ~57, max forced to 732."""
    sizes = np.clip(
        rng.lognormal(mean=3.3, sigma=1.0, size=tenants), 2, 500
    ).astype(int)
    # A few explicit giants, matching "some large tenants over 200 VMs in
    # size; the largest tenant has 732 VMs".
    giants = [732, 340, 260, 215]
    order = np.argsort(sizes)[::-1]
    for slot, giant in zip(order, giants):
        sizes[slot] = giant
    # Nudge the mean toward 57 by scaling the non-giant sizes.
    body = [i for i in range(tenants) if sizes[i] not in giants]
    target_body_total = 57 * tenants - sum(giants)
    body_total = sum(int(sizes[i]) for i in body)
    if body_total > 0:
        factor = target_body_total / body_total
        for i in body:
            sizes[i] = max(1, int(round(int(sizes[i]) * factor)))
    return [int(s) for s in sizes]


def _split_size(
    rng: np.random.Generator, total: int, parts: int
) -> list[int]:
    """Split ``total`` VMs into ``parts`` tiers, each at least 1."""
    if parts >= total:
        return [1] * total
    weights = rng.dirichlet(np.ones(parts) * 2.0)
    raw = np.maximum(1, np.round(weights * total).astype(int))
    # Fix rounding drift while keeping every tier >= 1.
    while raw.sum() > total:
        raw[np.argmax(raw)] -= 1
    while raw.sum() < total:
        raw[np.argmin(raw)] += 1
    return [int(x) for x in raw]


def _edge_bw(rng: np.random.Generator) -> float:
    return float(rng.lognormal(_EDGE_MU, _EDGE_SIGMA))


def _make_tenant(rng: np.random.Generator, name: str, size: int) -> Tag:
    pattern = rng.choice(_PATTERNS, p=_PATTERN_WEIGHTS)
    if size <= 2:
        pattern = "mapreduce" if size == 2 else "singleton"
    if pattern == "singleton":
        tag = Tag(name)
        tag.add_component("svc", size)
        tag.add_self_loop("svc", _edge_bw(rng))
        return tag
    if pattern == "mapreduce":
        mappers = max(1, int(size * rng.uniform(0.4, 0.7)))
        reducers = max(1, size - mappers)
        return patterns.mapreduce(
            name,
            mappers,
            reducers,
            shuffle_bw=_edge_bw(rng),
            intra_bw=_edge_bw(rng) * _MAPREDUCE_INTRA_SCALE,
        )
    tiers = int(rng.integers(3, 8))
    sizes = _split_size(rng, size, tiers)
    if pattern == "linear":
        tag = patterns.linear_chain(
            name, sizes, [_edge_bw(rng) for _ in range(len(sizes) - 1)]
        )
    elif pattern == "star":
        tag = patterns.star(
            name,
            sizes[0],
            sizes[1:],
            [_edge_bw(rng) for _ in sizes[1:]],
        )
    elif pattern == "ring":
        if len(sizes) < 3:
            sizes = sizes + [1] * (3 - len(sizes))
        tag = patterns.ring(name, sizes, [_edge_bw(rng) for _ in sizes])
    elif pattern == "mesh":
        tag = patterns.mesh(name, sizes[:5], _edge_bw(rng))
        leftover = sum(sizes[5:])
        if leftover:
            tag.add_component("extra", leftover)
            tag.add_undirected_edge("extra", "tier0", _edge_bw(rng), _edge_bw(rng))
    else:  # three_tier
        web = max(1, sizes[0])
        logic = max(1, sum(sizes[1:-1]) or 1)
        db = max(1, sizes[-1])
        tag = patterns.three_tier(
            name,
            (web, logic, db),
            b1=_edge_bw(rng),
            b2=_edge_bw(rng),
            b3=_edge_bw(rng) * _SELF_LOOP_SCALE,
        )
    # Sprinkle small intra-tier hoses on some tiers (state replication,
    # gossip), keeping inter-component traffic dominant.
    for component in tag.internal_components():
        if tag.self_loop(component.name) is None and rng.random() < _SELF_LOOP_PROB:
            tag.add_self_loop(component.name, _edge_bw(rng) * _SELF_LOOP_SCALE)
    return tag


def pool_statistics(pool: list[Tag]) -> dict[str, float]:
    """Statistics the generator is calibrated against (see module docs)."""
    sizes = [tag.size for tag in pool]
    inter_fractions = []
    total_inter = 0.0
    total_traffic = 0.0
    for tag in pool:
        for component in tag.internal_components():
            inter = sum(
                tag.edge_aggregate(e)
                for e in tag.out_edges(component.name) + tag.in_edges(component.name)
            )
            loop = tag.self_loop(component.name)
            intra = tag.edge_aggregate(loop) if loop is not None else 0.0
            if inter + intra > 0:
                inter_fractions.append(inter / (inter + intra))
            total_inter += inter / 2.0  # undirected pairs counted twice
            total_traffic += inter / 2.0 + intra
    return {
        "tenants": len(pool),
        "mean_size": float(np.mean(sizes)),
        "max_size": float(max(sizes)),
        "over_200": float(sum(1 for s in sizes if s > 200)),
        "mean_inter_fraction": float(np.mean(inter_fractions)),
        "total_inter_fraction": total_inter / total_traffic,
    }
