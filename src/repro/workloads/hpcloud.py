"""A synthetic stand-in for the hpcloud.com workload (paper §5).

The paper's second empirical dataset comes from HP Public Cloud via the
Choreo measurement study [29] (LaCurts et al., IMC 2013).  Choreo reports
that cloud tenants are typically *small* (tens of VMs), have sparse
communication where "a few pairs dominate" the traffic, and mostly form
simple hub-and-spoke or pipeline structures.  The paper only uses this
workload to state that results were "similar to Table 1", which is the
claim our Table 1 experiment re-checks with this pool.
"""

from __future__ import annotations

import numpy as np

from repro.core.tag import Tag
from repro.workloads import patterns

__all__ = ["hpcloud_pool"]


def hpcloud_pool(seed: int = 29, tenants: int = 60) -> list[Tag]:
    """Small tenants, sparse pair-dominated traffic, Pareto demands."""
    rng = np.random.default_rng(seed)
    pool: list[Tag] = []
    for i in range(tenants):
        name = f"hpc-{i:03d}"
        size = int(np.clip(rng.lognormal(2.0, 0.8), 2, 60))
        # Pareto demands: a few dominant pairs, a long tail of light ones.
        draw = lambda: float(rng.pareto(1.8) + 0.1)  # noqa: E731
        kind = rng.random()
        if kind < 0.5:
            tiers = int(rng.integers(2, 4))
            sizes = _split(rng, size, tiers)
            tag = patterns.linear_chain(
                name, sizes, [draw() for _ in range(len(sizes) - 1)]
            )
        elif kind < 0.8:
            tiers = int(rng.integers(2, 5))
            sizes = _split(rng, size, tiers)
            tag = patterns.star(
                name, sizes[0], sizes[1:], [draw() for _ in sizes[1:]]
            )
        else:
            half = max(1, size // 2)
            tag = patterns.mapreduce(
                name, half, max(1, size - half), draw(), intra_bw=draw() * 0.3
            )
        pool.append(tag)
    return pool


def _split(rng: np.random.Generator, total: int, parts: int) -> list[int]:
    if parts >= total:
        return [1] * total
    weights = rng.dirichlet(np.ones(parts))
    raw = np.maximum(1, np.round(weights * total).astype(int))
    while raw.sum() > total:
        raw[np.argmax(raw)] -= 1
    while raw.sum() < total:
        raw[np.argmin(raw)] += 1
    return [int(x) for x in raw]
