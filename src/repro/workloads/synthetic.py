"""The synthetic mixed workload (paper §5.1).

"Experiments (not shown) using a synthetic workload, formed by
artificially mixing different application sizes and types (e.g., three
tier web services and MapReduce jobs) ... yielded results similar to
Table 1."  This pool reproduces that mix: interactive three-tier web
services of varied sizes, MapReduce batch jobs with heavy intra-tier
shuffles, and Storm-like streaming pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.core.tag import Tag
from repro.workloads import patterns

__all__ = ["synthetic_pool"]


def synthetic_pool(seed: int = 7, tenants: int = 60) -> list[Tag]:
    rng = np.random.default_rng(seed)
    pool: list[Tag] = []
    for i in range(tenants):
        kind = rng.random()
        if kind < 0.5:
            scale = int(rng.integers(1, 20))
            pool.append(
                patterns.three_tier(
                    f"web-{i:03d}",
                    (2 * scale, 2 * scale, scale),
                    b1=float(rng.lognormal(0.3, 0.5)),
                    b2=float(rng.lognormal(-0.5, 0.5)),
                    b3=float(rng.lognormal(-1.5, 0.5)),
                )
            )
        elif kind < 0.8:
            mappers = int(rng.integers(4, 80))
            reducers = max(1, mappers // int(rng.integers(2, 5)))
            pool.append(
                patterns.mapreduce(
                    f"batch-{i:03d}",
                    mappers,
                    reducers,
                    shuffle_bw=float(rng.lognormal(0.0, 0.5)),
                    intra_bw=float(rng.lognormal(0.0, 0.5)),
                )
            )
        else:
            pool.append(
                patterns.storm(
                    f"storm-{i:03d}",
                    size=int(rng.integers(2, 25)),
                    bandwidth=float(rng.lognormal(0.2, 0.5)),
                )
            )
    return pool
