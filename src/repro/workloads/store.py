"""Persist tenant pools to JSON (reproducible experiment inputs).

A pool file is a versioned JSON array of TAG documents (see
:mod:`repro.core.serialize`), so a generated workload can be frozen,
shared, and reloaded byte-for-byte — the practical replacement for
shipping the proprietary bing dataset.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.core.serialize import tag_from_dict, tag_to_dict
from repro.core.tag import Tag
from repro.errors import SimulationError

__all__ = ["dump_pool", "load_pool", "pool_to_json", "pool_from_json"]

FORMAT = "repro-pool-v1"


def pool_to_json(pool: Sequence[Tag], *, indent: int | None = 2) -> str:
    document = {
        "format": FORMAT,
        "tenants": [tag_to_dict(tag) for tag in pool],
    }
    return json.dumps(document, indent=indent, sort_keys=True)


def pool_from_json(document: str) -> list[Tag]:
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"invalid pool JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise SimulationError(
            f"unsupported pool document; expected format {FORMAT!r}"
        )
    return [tag_from_dict(entry) for entry in data.get("tenants", [])]


def dump_pool(pool: Sequence[Tag], path: str | Path) -> None:
    Path(path).write_text(pool_to_json(pool))


def load_pool(path: str | Path) -> list[Tag]:
    return pool_from_json(Path(path).read_text())
