"""TAG builders for the application structures the paper discusses.

The bing.com dataset is described (§5) as services with "a diverse range
of job types (interactive web services or batch data-processing) and
communication patterns (e.g., linear, star, ring, mesh ...), and some have
large intra-service demands (similar to MapReduce)".  These builders
produce each of those shapes, plus the paper's worked examples: the
three-tier web application (Fig. 2) and the Storm pipeline (Fig. 3).

All guarantees are per-VM values in Mbps (or the workload's relative
units, scaled later via :mod:`repro.workloads.scaling`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.tag import Tag
from repro.errors import TagError

__all__ = [
    "three_tier",
    "storm",
    "linear_chain",
    "star",
    "ring",
    "mesh",
    "mapreduce",
]


def _tier_names(count: int) -> list[str]:
    return [f"tier{i}" for i in range(count)]


def three_tier(
    name: str,
    sizes: tuple[int, int, int],
    b1: float,
    b2: float,
    b3: float,
) -> Tag:
    """The Fig. 2(a) web application.

    ``b1`` = web<->logic per-VM guarantee, ``b2`` = logic<->db, ``b3`` =
    the DB tier's internal (consistency) hose.
    """
    tag = Tag(name)
    tag.add_component("web", sizes[0])
    tag.add_component("logic", sizes[1])
    tag.add_component("db", sizes[2])
    tag.add_undirected_edge("web", "logic", b1, b1)
    tag.add_undirected_edge("logic", "db", b2, b2)
    if b3 > 0:
        tag.add_self_loop("db", b3)
    return tag


def storm(name: str, size: int, bandwidth: float) -> Tag:
    """The Fig. 3(a) Storm pipeline: Spout1 -> {Bolt1, Bolt2}, Bolt2 -> Bolt3.

    Each component has ``size`` VMs; every communicating pair uses per-VM
    outgoing bandwidth ``bandwidth`` (so Spout1 sends ``2B`` total).  No
    intra-component traffic — the property that defeats the VOC model.
    """
    tag = Tag(name)
    for component in ("spout1", "bolt1", "bolt2", "bolt3"):
        tag.add_component(component, size)
    tag.add_edge("spout1", "bolt1", bandwidth, bandwidth)
    tag.add_edge("spout1", "bolt2", bandwidth, bandwidth)
    tag.add_edge("bolt2", "bolt3", bandwidth, bandwidth)
    return tag


def linear_chain(
    name: str, sizes: Sequence[int], bandwidths: Sequence[float]
) -> Tag:
    """Tiers in a line, symmetric edges between neighbours."""
    if len(bandwidths) != len(sizes) - 1:
        raise TagError("linear chain needs len(sizes) - 1 bandwidths")
    tag = Tag(name)
    names = _tier_names(len(sizes))
    for tier, size in zip(names, sizes):
        tag.add_component(tier, size)
    for i, bandwidth in enumerate(bandwidths):
        tag.add_undirected_edge(names[i], names[i + 1], bandwidth, bandwidth)
    return tag


def star(
    name: str,
    hub_size: int,
    leaf_sizes: Sequence[int],
    bandwidths: Sequence[float],
) -> Tag:
    """A hub tier talking to every leaf tier."""
    if len(bandwidths) != len(leaf_sizes):
        raise TagError("star needs one bandwidth per leaf")
    tag = Tag(name)
    tag.add_component("hub", hub_size)
    for i, (size, bandwidth) in enumerate(zip(leaf_sizes, bandwidths)):
        leaf = f"leaf{i}"
        tag.add_component(leaf, size)
        tag.add_undirected_edge("hub", leaf, bandwidth, bandwidth)
    return tag


def ring(name: str, sizes: Sequence[int], bandwidths: Sequence[float]) -> Tag:
    """Tiers in a cycle (each talks to the next, wrapping around)."""
    if len(sizes) < 3:
        raise TagError("a ring needs at least 3 tiers")
    if len(bandwidths) != len(sizes):
        raise TagError("ring needs one bandwidth per tier")
    tag = Tag(name)
    names = _tier_names(len(sizes))
    for tier, size in zip(names, sizes):
        tag.add_component(tier, size)
    for i, bandwidth in enumerate(bandwidths):
        tag.add_undirected_edge(names[i], names[(i + 1) % len(names)], bandwidth, bandwidth)
    return tag


def mesh(name: str, sizes: Sequence[int], bandwidth: float) -> Tag:
    """Every tier pair communicates with the same per-VM guarantee."""
    if len(sizes) < 2:
        raise TagError("a mesh needs at least 2 tiers")
    tag = Tag(name)
    names = _tier_names(len(sizes))
    for tier, size in zip(names, sizes):
        tag.add_component(tier, size)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            tag.add_undirected_edge(names[i], names[j], bandwidth, bandwidth)
    return tag


def mapreduce(
    name: str,
    mappers: int,
    reducers: int,
    shuffle_bw: float,
    intra_bw: float = 0.0,
) -> Tag:
    """A batch job: mappers shuffle to reducers, optional intra hoses.

    ``intra_bw > 0`` adds self-loops modelling the "large intra-service
    demands (similar to MapReduce)" in the bing pool.
    """
    tag = Tag(name)
    tag.add_component("map", mappers)
    tag.add_component("reduce", reducers)
    tag.add_edge("map", "reduce", shuffle_bw, shuffle_bw * mappers / reducers)
    if intra_bw > 0:
        tag.add_self_loop("map", intra_bw)
        tag.add_self_loop("reduce", intra_bw)
    return tag
