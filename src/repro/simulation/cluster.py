"""Cluster manager: drives a placer through arrival/departure streams.

Separates the event mechanics (heap of pending departures, metric
accounting, WCS sampling) from the placement algorithms, so the same loop
runs CloudMirror, Oktopus and SecondNet.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.tag import Tag
from repro.obs import core as obs
from repro.placement.base import Placement, Rejection
from repro.placement.ha import allocation_wcs
from repro.simulation.arrivals import Arrival
from repro.simulation.metrics import RunMetrics, UtilizationSample
from repro.topology.ledger import Ledger

__all__ = ["ClusterManager", "run_arrival_departure", "run_arrivals_until_full"]


@dataclass(frozen=True)
class _Departure:
    time: float
    sequence: int
    allocation: object

    def __lt__(self, other: "_Departure") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class ClusterManager:
    """Admits and releases tenants against one shared ledger."""

    def __init__(
        self,
        ledger: Ledger,
        placer,
        *,
        laa_level: int = 0,
        collect_wcs: bool = True,
        collect_utilization: bool = True,
    ) -> None:
        self.ledger = ledger
        self.placer = placer
        self.laa_level = laa_level
        self.collect_wcs = collect_wcs
        self.collect_utilization = collect_utilization
        self.metrics = RunMetrics()
        # Keyed by object identity so departures are O(1) instead of an
        # O(n) list scan — long arrival/departure runs used to go
        # quadratic in live tenants.  Insertion order is preserved, so
        # iteration over ``active`` matches the old list's order.
        self._active: dict[int, object] = {}

    @property
    def active(self) -> list[object]:
        """Live allocations, in admission order."""
        return list(self._active.values())

    def admit(self, tag: Tag):
        """Place one tenant, updating metrics; returns the result."""
        self.metrics.record_arrival(tag.size, tag.total_bandwidth)
        # obs.timed measures with perf_counter either way and doubles as
        # a "place" span when a trial trace is being recorded.
        with obs.timed("place") as timer:
            result = self.placer.place(tag)
        self.metrics.runtime_seconds += timer.seconds
        if isinstance(result, Rejection):
            self.metrics.record_rejection(tag.size, tag.total_bandwidth)
            self._sample_utilization()
            return result
        assert isinstance(result, Placement)
        self._active[id(result.allocation)] = result.allocation
        if self.collect_wcs:
            self._sample_wcs(result.allocation)
        self._sample_utilization()
        return result

    def depart(self, allocation) -> None:
        if id(allocation) not in self._active:
            raise KeyError("departing allocation is not active")
        allocation.release()
        del self._active[id(allocation)]

    def _sample_utilization(self) -> None:
        # The bandwidth sample walks every finite-capacity server, which
        # dominates placement itself on large topologies; benchmarks that
        # only care about placement throughput switch it off.
        if not self.collect_utilization:
            return
        topology = self.ledger.topology
        total_slots = topology.total_slots
        slot_fraction = 1.0 - self.ledger.free_slots(topology.root) / total_slots
        # Sampled after *every* admission: the ledger sums its flat
        # usage array over a precomputed finite-capacity server id list
        # instead of walking Node objects.
        bandwidth_fraction = self.ledger.server_bandwidth_fraction()
        self.metrics.utilization.append(
            UtilizationSample(slot_fraction, bandwidth_fraction)
        )

    def _sample_wcs(self, allocation) -> None:
        try:
            per_tier = allocation_wcs(allocation, self.laa_level)
        except (AttributeError, ValueError):  # pipe allocations, size-0 tiers
            return
        for tier, wcs in per_tier.items():
            # Single-VM tiers cannot survive any fault-domain failure; the
            # WCS statistics follow [11] and cover multi-VM components.
            if allocation.tag.component(tier).size > 1:
                self.metrics.wcs.add(wcs)


def run_arrival_departure(
    manager: ClusterManager, arrivals: Sequence[Arrival], pool: Sequence[Tag]
) -> RunMetrics:
    """Standard §5.1 loop: Poisson arrivals, exponential departures."""
    departures: list[_Departure] = []
    sequence = 0
    for arrival in arrivals:
        while departures and departures[0].time <= arrival.time:
            manager.depart(heapq.heappop(departures).allocation)
        result = manager.admit(pool[arrival.tenant_index])
        if isinstance(result, Placement):
            sequence += 1
            heapq.heappush(
                departures,
                _Departure(arrival.time + arrival.dwell, sequence, result.allocation),
            )
    return manager.metrics


def run_arrivals_until_full(
    manager: ClusterManager,
    pool: Sequence[Tag],
    indices: Sequence[int],
    *,
    stop_on_rejection: bool = True,
) -> list[int]:
    """Table 1 loop: arrivals only, stop at the first rejection.

    Returns the indices of accepted tenants (so a second algorithm can be
    fed exactly the same accepted set, as the paper does).
    """
    accepted: list[int] = []
    for index in indices:
        result = manager.admit(pool[index])
        if isinstance(result, Rejection):
            if stop_on_rejection:
                break
        else:
            accepted.append(index)
    return accepted
