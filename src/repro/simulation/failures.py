"""Failure-injection scenario: guarantee survival and re-placement churn.

Extends the Fig. 4 hose-failure motivation into a full sweep: load a
datacenter through the standard §5.1 arrival/departure loop, inject a
seeded set of server / switch / link failures through the ledger's
:class:`~repro.topology.failures.FailureMask`, then measure

* **survival** — how many placed tenants (and VMs) kept their guarantee
  because none of their VMs sat in a failed domain;
* **re-placement churn** — victims are released and re-admitted under
  the mask (the fabric minus its failed domains); how many fit again,
  how many VMs had to move, how many tenants are lost;
* **time-to-recover** — wall clock of the victim release + re-admission
  pass (indicative only: it is excluded from payload fingerprints).

The failure set is drawn from the trial seed, not the arrival seed
stream, so the loaded state and the fault pattern vary independently
across seed replicas.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.tag import Tag
from repro.obs import core as obs
from repro.placement.base import Placement
from repro.simulation.arrivals import poisson_arrivals
from repro.simulation.cluster import ClusterManager, run_arrival_departure
from repro.simulation.runner import make_placer
from repro.topology.ledger import Journal, Ledger
from repro.topology.tree import Topology

__all__ = ["pick_failures", "run_failure_scenario"]


def pick_failures(
    topology: Topology,
    rng: random.Random,
    *,
    fail_fraction: float,
    switch_failures: int,
    link_failures: int,
) -> tuple[list[int], list[int], list[int]]:
    """Draw a disjoint (servers, switches, links) failure set.

    Switch and link failures hit distinct ToRs (a dead ToR and a dead
    ToR uplink strand the same rack; keeping the draws disjoint makes
    the counts meaningful), and server failures are drawn from racks
    not already stranded.  All draws are clamped to what the topology
    actually has.
    """
    flat = topology.flat
    # ToR switches: level 1, but only when that level is below the root
    # (a single-rack tree's level-1 node *is* the root).
    racks = list(flat.level_ids[1]) if flat.num_levels > 2 else []
    switches = sorted(rng.sample(racks, min(switch_failures, len(racks))))
    remaining = [rack for rack in racks if rack not in switches]
    links = sorted(rng.sample(remaining, min(link_failures, len(remaining))))
    covered: set[int] = set()
    for node_id in switches + links:
        lo, hi = flat.server_span[node_id]
        covered.update(flat.server_order[lo:hi])
    candidates = [s for s in flat.server_order if s not in covered]
    count = min(
        len(candidates), max(0, round(fail_fraction * len(flat.server_order)))
    )
    servers = sorted(rng.sample(candidates, count))
    return servers, switches, links


def run_failure_scenario(
    topology: Topology,
    pool: Sequence[Tag],
    *,
    placer_name: str,
    ha=None,
    load: float,
    arrivals: int,
    seed: int,
    fail_fraction: float,
    switch_failures: int = 1,
    link_failures: int = 1,
    use_candidate_index: bool = True,
) -> dict[str, Any]:
    """Load, fail, recover; returns the survival/churn payload dict."""
    ledger = Ledger(topology)
    placer = make_placer(
        placer_name, ledger, ha, use_candidate_index=use_candidate_index
    )
    manager = ClusterManager(
        ledger, placer, collect_wcs=False, collect_utilization=False
    )
    events = poisson_arrivals(
        pool, arrivals, load, topology.total_slots, seed=seed
    )
    run_arrival_departure(manager, events, pool)
    placed = manager.active
    placed_vms = sum(allocation.tag.size for allocation in placed)

    rng = random.Random(seed * 7919 + 13)
    servers, switches, links = pick_failures(
        topology,
        rng,
        fail_fraction=fail_fraction,
        switch_failures=switch_failures,
        link_failures=link_failures,
    )
    mask = ledger.ensure_failure_mask()
    journal = Journal()
    for node_id in switches:
        mask.fail(node_id, journal)
    for node_id in links:
        mask.fail_link(node_id, journal)
    for node_id in servers:
        mask.fail(node_id, journal)

    # obs.timed: same perf_counter pair as before, plus a "recover" span
    # in the trial trace when instrumentation is on.
    with obs.timed("recover") as timer:
        victims = [
            allocation
            for allocation in placed
            if any(
                mask.is_down(server.node_id)
                for server, _ in allocation.iter_server_placements()
            )
        ]
        victim_vms = sum(allocation.tag.size for allocation in victims)
        for allocation in victims:
            manager.depart(allocation)
        replaced = lost = churn_vms = 0
        for allocation in victims:
            if isinstance(manager.admit(allocation.tag), Placement):
                replaced += 1
                churn_vms += allocation.tag.size
            else:
                lost += 1
    recover_seconds = timer.seconds

    # Recovery invariant: nothing may live on a covered server.
    for allocation in manager.active:
        for server, _ in allocation.iter_server_placements():
            assert not mask.is_down(server.node_id), (
                f"allocation survived on failed server {server.name!r}"
            )

    survivors = len(placed) - len(victims)
    return {
        "placed": len(placed),
        "placed_vms": placed_vms,
        "failed_servers": len(servers),
        "failed_switches": len(switches),
        "failed_links": len(links),
        "downed_servers": len(mask.down_servers()),
        "victims": len(victims),
        "victim_vms": victim_vms,
        "survivors": survivors,
        "survival_rate": survivors / len(placed) if placed else 1.0,
        "replaced": replaced,
        "lost": lost,
        "churn_vms": churn_vms,
        "recover_seconds": recover_seconds,
    }
