"""Metrics collected by the admission simulations (paper §5.1).

The evaluation reports three rejection metrics — fraction of rejected
tenants, of rejected VMs, and of rejected aggregate bandwidth, each
relative to the totals over all arrivals — plus per-component worst-case
survivability (WCS) statistics and per-level reserved bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunMetrics", "UtilizationSample", "WcsStats"]


@dataclass
class WcsStats:
    """Distribution of achieved per-component WCS over deployed tenants."""

    values: list[float] = field(default_factory=list)

    def add(self, wcs: float) -> None:
        self.values.append(wcs)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return float(min(self.values)) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return float(max(self.values)) if self.values else 0.0

    def to_dict(self) -> dict:
        """JSON-able form for the results store (exact float round-trip)."""
        return {"values": list(self.values)}

    @classmethod
    def from_dict(cls, data: dict) -> "WcsStats":
        return cls(values=[float(value) for value in data["values"]])


@dataclass
class UtilizationSample:
    """A point-in-time snapshot of datacenter resource usage."""

    slot_fraction: float
    bandwidth_fraction: float

    def to_dict(self) -> dict:
        return {
            "slot_fraction": self.slot_fraction,
            "bandwidth_fraction": self.bandwidth_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UtilizationSample":
        return cls(
            slot_fraction=float(data["slot_fraction"]),
            bandwidth_fraction=float(data["bandwidth_fraction"]),
        )


@dataclass
class RunMetrics:
    """Counters for one simulation run."""

    tenants_total: int = 0
    tenants_rejected: int = 0
    vms_total: int = 0
    vms_rejected: int = 0
    bw_total: float = 0.0
    bw_rejected: float = 0.0
    wcs: WcsStats = field(default_factory=WcsStats)
    runtime_seconds: float = 0.0
    utilization: list[UtilizationSample] = field(default_factory=list)

    def record_arrival(self, vms: int, bandwidth: float) -> None:
        self.tenants_total += 1
        self.vms_total += vms
        self.bw_total += bandwidth

    def record_rejection(self, vms: int, bandwidth: float) -> None:
        self.tenants_rejected += 1
        self.vms_rejected += vms
        self.bw_rejected += bandwidth

    @property
    def mean_slot_utilization(self) -> float:
        """Average slot occupancy across the run's samples (Fig. 11 text:
        "guaranteeing WCS may decrease datacenter utilization")."""
        if not self.utilization:
            return 0.0
        return float(np.mean([s.slot_fraction for s in self.utilization]))

    @property
    def mean_bandwidth_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return float(
            np.mean([s.bandwidth_fraction for s in self.utilization])
        )

    @property
    def tenant_rejection_rate(self) -> float:
        return self.tenants_rejected / self.tenants_total if self.tenants_total else 0.0

    @property
    def vm_rejection_rate(self) -> float:
        return self.vms_rejected / self.vms_total if self.vms_total else 0.0

    @property
    def bw_rejection_rate(self) -> float:
        return self.bw_rejected / self.bw_total if self.bw_total else 0.0

    def to_dict(self) -> dict:
        """JSON-able form for the results store (exact float round-trip)."""
        return {
            "tenants_total": self.tenants_total,
            "tenants_rejected": self.tenants_rejected,
            "vms_total": self.vms_total,
            "vms_rejected": self.vms_rejected,
            "bw_total": self.bw_total,
            "bw_rejected": self.bw_rejected,
            "wcs": self.wcs.to_dict(),
            "runtime_seconds": self.runtime_seconds,
            "utilization": [sample.to_dict() for sample in self.utilization],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        return cls(
            tenants_total=int(data["tenants_total"]),
            tenants_rejected=int(data["tenants_rejected"]),
            vms_total=int(data["vms_total"]),
            vms_rejected=int(data["vms_rejected"]),
            bw_total=float(data["bw_total"]),
            bw_rejected=float(data["bw_rejected"]),
            wcs=WcsStats.from_dict(data["wcs"]),
            runtime_seconds=float(data["runtime_seconds"]),
            utilization=[
                UtilizationSample.from_dict(sample)
                for sample in data["utilization"]
            ],
        )
