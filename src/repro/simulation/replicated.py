"""Multi-seed replication for the stochastic experiments.

One seed gives one Poisson sample path; the paper's curves are smooth
because they aggregate long runs.  :func:`replicate` repeats a
metric-producing run across seeds and reports mean/stdev/extremes, so
benchmark assertions can target the mean instead of one path's noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["Replication", "replicate"]


@dataclass(frozen=True)
class Replication:
    """Summary statistics of one scalar metric across seeds."""

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.stdev:.2g} (n={len(self.values)})"


def replicate(
    run: Callable[[int], float], seeds: Sequence[int]
) -> Replication:
    """Run ``run(seed)`` for every seed and summarize the scalar results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return Replication(tuple(float(run(seed)) for seed in seeds))
