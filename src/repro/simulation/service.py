"""Million-event service loop: cohort-batched admission, O(1) metrics.

The ROADMAP's online-service scenario streams millions of tenant
arrivals and departures through one shared ledger.  The per-event loop
(:func:`repro.simulation.cluster.run_arrival_departure`) was built for
10k-arrival batches and pays, per admission: an ``obs.timed`` context
manager, several :class:`~repro.simulation.metrics.RunMetrics`
attribute bumps, a WCS sample, and — dominating everything on real
topologies — an O(servers) bandwidth-utilization sweep.  Its metrics
are unbounded Python lists, so a long run's memory grows with the event
count.

:class:`ServiceLoop` restructures the loop around **cohorts** — maximal
runs of consecutive arrivals with no departure due between them — while
keeping every placement decision *bit-identical* to the sequential
per-event loop (the differential suite in ``tests/simulation`` pins
accept/reject sequences and ledger end-state for all four placers):

* decisions stay strictly sequential — a cohort changes *when the
  bookkeeping happens*, never the ledger state a placement sees;
* one fused feasibility pre-pass per cohort: a running root free-slot
  count screens arrivals that cannot fit before the placer is invoked
  (any correct placer must reject a tenant with more VMs than the
  datacenter has free slots, so the short-circuit is decision-exact);
* per-tier utilization is sampled at heartbeat boundaries instead of
  after every admission, amortizing the O(servers) sweep to ~zero;
* metric accounting accumulates in locals and flushes once per cohort.

The placement scan itself stays O(1)-amortized across events because
the :class:`~repro.placement.candidates.CandidateIndex` attached to the
ledger persists for the whole run: arrivals and departures repair its
sorted orders in place through the dirty-bit funnel, and the per-tag
compile caches (:mod:`repro.placement.state`) mean a recurring pool
tenant never re-derives its requirement closure.

Metrics are *streaming*: a fixed-bucket log histogram for time-to-place
quantiles, a fixed ring for the windowed rejection rate, and running
means for utilization — O(1) memory at any event count, which the loop
exports as the ``service.metrics_entries`` obs gauge so a test can
assert the footprint is independent of run length.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from time import perf_counter
from typing import Callable, Iterable, Sequence

from repro.core.tag import Tag
from repro.errors import SimulationError
from repro.obs import core as _obs
from repro.placement.base import Placement, Rejection
from repro.simulation.arrivals import Arrival

__all__ = [
    "LatencyHistogram",
    "RejectionWindow",
    "ServiceLoop",
    "StreamingServiceMetrics",
    "ledger_fingerprint",
]


class LatencyHistogram:
    """Fixed-size log-bucket accumulator for per-event latencies.

    ``buckets`` geometric buckets span ``lo``..``hi`` seconds with an
    underflow bucket below ``lo`` and an overflow bucket above ``hi`` —
    about 9 buckets per decade at the defaults, i.e. ~30% quantile
    resolution, plenty for p50/p99 monitoring.  Memory is the bucket
    array, regardless of how many samples flow through.
    """

    __slots__ = ("counts", "count", "total", "_lo", "_hi", "_scale", "_edges")

    def __init__(
        self, *, buckets: int = 84, lo: float = 1e-7, hi: float = 1e2
    ) -> None:
        if buckets < 3 or not 0 < lo < hi:
            raise SimulationError("need >= 3 buckets and 0 < lo < hi")
        self.counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self._lo = lo
        self._hi = hi
        # interior buckets map log-uniformly onto lo..hi
        self._scale = (buckets - 2) / math.log(hi / lo)
        self._edges = [
            lo * math.exp(i / self._scale) for i in range(buckets - 1)
        ]

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self._lo:
            index = 0
        elif seconds >= self._hi:
            index = len(self.counts) - 1
        else:
            index = 1 + int(self._scale * math.log(seconds / self._lo))
        self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (geometric bucket midpoint)."""
        if not 0 <= q <= 1:
            raise SimulationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * (self.count - 1)
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen > target:
                if index == 0:
                    return self._lo / 2.0
                if index == len(self.counts) - 1:
                    return self._hi
                left = self._edges[index - 1]
                right = self._edges[index]
                return math.sqrt(left * right)
        return self._hi  # pragma: no cover - count guards above

    def footprint(self) -> int:
        """Stored scalars (constant: the bucket and edge arrays)."""
        return len(self.counts) + len(self._edges) + 2


class RejectionWindow:
    """Ring buffer of the last ``size`` admission decisions."""

    __slots__ = ("_ring", "_pos", "_filled", "_rejected")

    def __init__(self, size: int = 1024) -> None:
        if size < 1:
            raise SimulationError(f"window size must be positive, got {size}")
        self._ring = bytearray(size)
        self._pos = 0
        self._filled = 0
        self._rejected = 0

    def add(self, rejected: bool) -> None:
        ring = self._ring
        pos = self._pos
        if self._filled == len(ring):
            self._rejected -= ring[pos]
        else:
            self._filled += 1
        ring[pos] = 1 if rejected else 0
        self._rejected += ring[pos]
        self._pos = (pos + 1) % len(ring)

    @property
    def rate(self) -> float:
        """Rejection fraction over the window (0.0 before any decision)."""
        return self._rejected / self._filled if self._filled else 0.0

    @property
    def filled(self) -> int:
        return self._filled

    def footprint(self) -> int:
        return len(self._ring) + 3


class StreamingServiceMetrics:
    """O(1)-memory counters for an open-ended admission stream.

    Everything :class:`~repro.simulation.metrics.RunMetrics` keeps as an
    unbounded list becomes either a fixed-size accumulator (latency
    histogram, rejection window) or a running mean (utilization).
    """

    __slots__ = (
        "arrivals",
        "accepted",
        "rejected",
        "departures",
        "vms_total",
        "vms_rejected",
        "bw_total",
        "bw_rejected",
        "cohorts",
        "max_cohort",
        "place_latency",
        "window",
        "util_samples",
        "mean_slot_utilization",
        "last_slot_utilization",
        "mean_bw_utilization",
        "last_bw_utilization",
    )

    def __init__(self, *, window: int = 1024) -> None:
        self.arrivals = 0
        self.accepted = 0
        self.rejected = 0
        self.departures = 0
        self.vms_total = 0
        self.vms_rejected = 0
        self.bw_total = 0.0
        self.bw_rejected = 0.0
        self.cohorts = 0
        self.max_cohort = 0
        self.place_latency = LatencyHistogram()
        self.window = RejectionWindow(window)
        self.util_samples = 0
        self.mean_slot_utilization = 0.0
        self.last_slot_utilization = 0.0
        self.mean_bw_utilization = 0.0
        self.last_bw_utilization = 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.arrivals if self.arrivals else 0.0

    def sample_utilization(self, slot_fraction: float, bw_fraction: float) -> None:
        self.util_samples += 1
        n = self.util_samples
        self.mean_slot_utilization += (slot_fraction - self.mean_slot_utilization) / n
        self.mean_bw_utilization += (bw_fraction - self.mean_bw_utilization) / n
        self.last_slot_utilization = slot_fraction
        self.last_bw_utilization = bw_fraction

    def footprint(self) -> int:
        """Total stored scalars — constant for any event count."""
        return (
            len(self.__slots__) - 2  # the scalar fields
            + self.place_latency.footprint()
            + self.window.footprint()
        )


class ServiceLoop:
    """Heap-scheduled arrival/departure loop with cohort-batched admission.

    Drives one ``(ledger, placer)`` pair — the same objects the
    per-event :class:`~repro.simulation.cluster.ClusterManager` would
    drive — through an arrival stream (any ``Iterable[Arrival]``,
    including the streaming generators in
    :mod:`repro.simulation.arrivals`).  ``cohort`` caps the batch size
    (1 degenerates to per-event bookkeeping; the decisions are identical
    either way), ``heartbeat`` sets how many events pass between
    utilization samples, gauge refreshes and progress beats.

    ``on_decision`` (tests, benches) receives ``True``/``False`` per
    arrival in order; leave it ``None`` on the hot path.
    """

    def __init__(
        self,
        ledger,
        placer,
        pool: Sequence[Tag],
        *,
        cohort: int = 64,
        heartbeat: int = 4096,
        window: int = 1024,
        progress=None,
        collect_utilization: bool = True,
        on_decision: Callable[[bool], None] | None = None,
    ) -> None:
        if cohort < 1:
            raise SimulationError(f"cohort size must be >= 1, got {cohort}")
        if heartbeat < 1:
            raise SimulationError(f"heartbeat must be >= 1, got {heartbeat}")
        if not pool:
            raise SimulationError("tenant pool is empty")
        self.ledger = ledger
        self.placer = placer
        self.pool = list(pool)
        self.cohort = cohort
        self.heartbeat = heartbeat
        self.progress = progress
        self.collect_utilization = collect_utilization
        self.on_decision = on_decision
        self.metrics = StreamingServiceMetrics(window=window)
        # Per-tag scalars the hot loop would otherwise re-derive from
        # Tag properties on every arrival.
        self._sizes = [tag.size for tag in self.pool]
        self._bws = [tag.total_bandwidth for tag in self.pool]
        self._root_id = ledger.flat.root_id
        self._total_slots = ledger.topology.total_slots
        self._bw_fraction = getattr(ledger, "server_bandwidth_fraction", None)

    # ------------------------------------------------------------------
    def run(self, events: Iterable[Arrival]) -> dict:
        """Stream ``events`` through the loop; returns the report dict."""
        metrics = self.metrics
        pool = self.pool
        sizes = self._sizes
        bws = self._bws
        place = self.placer.place
        free_of = self.ledger.free_slots_id
        root_id = self._root_id
        latency_add = metrics.place_latency.add
        window_add = metrics.window.add
        on_decision = self.on_decision
        cohort_cap = self.cohort
        heartbeat = self.heartbeat
        departures: list[tuple[float, int, object]] = []
        heappush, heappop = heapq.heappush, heapq.heappop
        sequence = 0
        since_beat = 0
        started = perf_counter()
        if self.progress is not None:
            self.progress.begin(total=None, n_jobs=1)
        stream = iter(events)
        pending = next(stream, None)
        while pending is not None:
            # Departures due at or before this arrival go first — the
            # exact run_arrival_departure ordering rule.
            while departures and departures[0][0] <= pending.time:
                heappop(departures)[2].release()
                metrics.departures += 1
            # One cohort: consecutive arrivals with no departure due
            # between them.  Admissions may push new departures, so the
            # boundary is re-checked against the live heap head.
            batch = vms = rejected = rej_vms = 0
            bw = rej_bw = 0.0
            free = free_of(root_id)
            while pending is not None and batch < cohort_cap:
                if departures and departures[0][0] <= pending.time:
                    break
                index = pending.tenant_index
                size = sizes[index]
                batch += 1
                vms += size
                bw += bws[index]
                if size > free:
                    # Fused feasibility gate: more VMs than the whole
                    # datacenter has free — every placer rejects this
                    # identically, without a scan.
                    rejected += 1
                    rej_vms += size
                    rej_bw += bws[index]
                    window_add(True)
                    if on_decision is not None:
                        on_decision(False)
                else:
                    t0 = perf_counter()
                    result = place(pool[index])
                    latency_add(perf_counter() - t0)
                    if isinstance(result, Rejection):
                        rejected += 1
                        rej_vms += size
                        rej_bw += bws[index]
                        window_add(True)
                        if on_decision is not None:
                            on_decision(False)
                    else:
                        assert isinstance(result, Placement)
                        sequence += 1
                        heappush(
                            departures,
                            (
                                pending.time + pending.dwell,
                                sequence,
                                result.allocation,
                            ),
                        )
                        free = free_of(root_id)
                        window_add(False)
                        if on_decision is not None:
                            on_decision(True)
                pending = next(stream, None)
            # Flush the cohort's accounting in one go.
            metrics.arrivals += batch
            metrics.rejected += rejected
            metrics.accepted += batch - rejected
            metrics.vms_total += vms
            metrics.vms_rejected += rej_vms
            metrics.bw_total += bw
            metrics.bw_rejected += rej_bw
            metrics.cohorts += 1
            if batch > metrics.max_cohort:
                metrics.max_cohort = batch
            since_beat += batch
            if since_beat >= heartbeat:
                self._beat(since_beat)
                since_beat = 0
        elapsed = perf_counter() - started
        self._beat(since_beat)
        if self.progress is not None:
            self.progress.close()
        return self._report(elapsed)

    # ------------------------------------------------------------------
    def _beat(self, events_done: int) -> None:
        """Heartbeat boundary: sample utilization, refresh gauges, tick."""
        metrics = self.metrics
        if self.collect_utilization:
            slot_fraction = 1.0 - self.ledger.free_slots_id(self._root_id) / (
                self._total_slots
            )
            bw_fraction = (
                self._bw_fraction() if self._bw_fraction is not None else 0.0
            )
            metrics.sample_utilization(slot_fraction, bw_fraction)
        c = _obs.counters
        if c is not None:
            # Gauges (assignment, not bump): the O(1)-memory claim and
            # the index footprint are point-in-time readings.
            c["service.metrics_entries"] = metrics.footprint()
            index = self.ledger._candidate_index
            if index is not None:
                stats = index.stats()
                c["service.index_entries"] = (
                    stats["level_entries"] + stats["rack_entries"]
                )
        if self.progress is not None and events_done:
            self.progress.update(step=events_done)

    def _report(self, elapsed: float) -> dict:
        metrics = self.metrics
        latency = metrics.place_latency
        return {
            "arrivals": metrics.arrivals,
            "accepted": metrics.accepted,
            "rejected": metrics.rejected,
            "departures": metrics.departures,
            "vms_total": metrics.vms_total,
            "vms_rejected": metrics.vms_rejected,
            "bw_total": metrics.bw_total,
            "bw_rejected": metrics.bw_rejected,
            "cohorts": metrics.cohorts,
            "max_cohort": metrics.max_cohort,
            "rejection_rate": metrics.rejection_rate,
            "windowed_rejection_rate": metrics.window.rate,
            "utilization": {
                "samples": metrics.util_samples,
                "mean_slot": metrics.mean_slot_utilization,
                "last_slot": metrics.last_slot_utilization,
                "mean_bw": metrics.mean_bw_utilization,
                "last_bw": metrics.last_bw_utilization,
            },
            # Wall-clock block: excluded from trial fingerprints (the
            # "timing" key is a _TIMING_FIELDS member) and zeroed by the
            # service codec so stored payload bytes stay canonical.
            "timing": {
                "runtime_seconds": elapsed,
                "events_per_sec": (
                    metrics.arrivals / elapsed if elapsed > 0 else 0.0
                ),
                "p50_place_ms": latency.quantile(0.5) * 1e3,
                "p99_place_ms": latency.quantile(0.99) * 1e3,
                "mean_place_ms": latency.mean * 1e3,
            },
        }


def ledger_fingerprint(ledger) -> str:
    """SHA-256 of a ledger's reservation end-state.

    The differential suites compare this across the cohort-batched and
    per-event loops: equal fingerprints mean bit-identical slot usage
    and bandwidth reservations on every node (and every W plane, for a
    temporal ledger).
    """
    parts = [repr(ledger._used_slots)]
    if hasattr(ledger, "_used_up"):
        parts.append(repr(ledger._used_up))
        parts.append(repr(ledger._used_down))
    else:  # TemporalLedger: the per-plane blocks are the state
        parts.append(repr(ledger._up))
        parts.append(repr(ledger._down))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()
