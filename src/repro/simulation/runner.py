"""End-to-end experiment loops shared by the §5 experiments.

Two modes:

* :func:`simulate_rejections` — the standard arrival/departure loop over
  a capacity-constrained datacenter, reporting rejection rates and WCS
  statistics (Figs. 7-12).
* :func:`measure_reserved_bandwidth` — the Table 1 loop: an idealized
  unlimited-capacity datacenter, arrivals only, stop at the first
  rejection for lack of slots, and report per-level reserved bandwidth
  for CM+TAG, CM+VOC (same placement, VOC accounting) and Oktopus+VOC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.tag import Tag
from repro.errors import SimulationError
from repro.models.voc import voc_uplink_requirement
from repro.placement.cloudmirror import CloudMirrorPlacer
from repro.placement.ha import HaPolicy
from repro.placement.oktopus import OktopusPlacer
from repro.placement.secondnet import SecondNetPlacer
from repro.simulation.arrivals import poisson_arrivals
from repro.simulation.cluster import (
    ClusterManager,
    run_arrival_departure,
    run_arrivals_until_full,
)
from repro.simulation.metrics import RunMetrics
from repro.topology.builder import DatacenterSpec, three_level_tree
from repro.topology.ledger import Ledger
from repro.workloads.scaling import scale_pool

__all__ = [
    "make_placer",
    "simulate_rejections",
    "measure_reserved_bandwidth",
    "ReservedBandwidth",
    "PLACER_NAMES",
]

PLACER_NAMES = (
    "cm",
    "cm-coloc-only",
    "cm-balance-only",
    "ovoc",
    "secondnet",
)


def make_placer(
    name: str,
    ledger: Ledger,
    ha: HaPolicy | None = None,
    *,
    use_candidate_index: bool = True,
):
    """Placer factory used by experiments and the CLI.

    ``cm-coloc-only`` and ``cm-balance-only`` are the Fig. 10 ablations.
    ``use_candidate_index=False`` selects the index-free candidate scan
    (bit-identical placements; the lockstep tests and the candidate-cache
    benchmark compare the two paths).
    """
    if name == "cm":
        return CloudMirrorPlacer(ledger, ha=ha, use_candidate_index=use_candidate_index)
    if name == "cm-coloc-only":
        return CloudMirrorPlacer(
            ledger, enable_balance=False, ha=ha, use_candidate_index=use_candidate_index
        )
    if name == "cm-balance-only":
        return CloudMirrorPlacer(
            ledger,
            enable_colocate=False,
            ha=ha,
            use_candidate_index=use_candidate_index,
        )
    if name == "ovoc":
        return OktopusPlacer(ledger, ha=ha, use_candidate_index=use_candidate_index)
    if name == "secondnet":
        if ha is not None and (ha.guarantees_wcs or ha.opportunistic):
            raise SimulationError("the SecondNet baseline does not support HA")
        return SecondNetPlacer(ledger, use_candidate_index=use_candidate_index)
    raise SimulationError(f"unknown placer {name!r}; options: {PLACER_NAMES}")


def simulate_rejections(
    pool: Sequence[Tag],
    placer_name: str,
    *,
    load: float,
    bmax: float,
    spec: DatacenterSpec,
    arrivals: int,
    seed: int = 0,
    ha: HaPolicy | None = None,
    laa_level: int = 0,
) -> RunMetrics:
    """One §5.1 run: scale pool to B_max, stream arrivals, collect metrics.

    This is the standalone single-run primitive.  Sweeps should go
    through ``repro.engine``, whose ``build_context`` caches reuse the
    scaled pool and topology across trials; the engine's rejection
    runner is pinned to this function by an equivalence test.
    """
    scaled = scale_pool(pool, bmax)
    topology = three_level_tree(spec)
    ledger = Ledger(topology)
    placer = make_placer(placer_name, ledger, ha)
    manager = ClusterManager(ledger, placer, laa_level=laa_level)
    events = poisson_arrivals(
        scaled, arrivals, load, topology.total_slots, seed=seed
    )
    return run_arrival_departure(manager, events, scaled)


@dataclass(frozen=True)
class ReservedBandwidth:
    """Table 1 row set: per-level reserved Gbps for the three combos."""

    cm_tag: dict[str, float]
    cm_voc: dict[str, float]
    ovoc: dict[str, float]
    tenants_deployed: int

    LEVELS = ("server", "tor", "agg")


def _per_level(ledger: Ledger) -> dict[str, float]:
    return {
        level_name: ledger.reserved_at_level(level) / 1000.0  # Mbps -> Gbps
        for level, level_name in enumerate(ReservedBandwidth.LEVELS)
    }


def measure_reserved_bandwidth(
    pool: Sequence[Tag],
    *,
    bmax: float,
    spec: DatacenterSpec,
    seed: int = 0,
    max_arrivals: int = 20_000,
    topology=None,
) -> ReservedBandwidth:
    """The Table 1 experiment (see module docstring).

    ``topology`` optionally supplies a prebuilt *unlimited* tree (shared
    safely by both ledgers — topologies are immutable).
    """
    scaled = scale_pool(pool, bmax)
    rng = np.random.default_rng(seed)
    indices = [int(i) for i in rng.integers(0, len(scaled), size=max_arrivals)]

    # CM placing TAGs on the idealized topology.
    if topology is None:
        topology = three_level_tree(spec, unlimited=True)
    cm_ledger = Ledger(topology)
    cm_manager = ClusterManager(
        cm_ledger, CloudMirrorPlacer(cm_ledger), collect_wcs=False
    )
    accepted = run_arrivals_until_full(cm_manager, scaled, indices)
    cm_tag = _per_level(cm_ledger)

    # Same placement, accounted under the VOC abstraction (footnote 7).
    # Walks the flat core's id twins — ``iter_node_counts_id`` plus the
    # precomputed ``level[]`` array — instead of ``Node`` objects.
    cm_voc = {name: 0.0 for name in ReservedBandwidth.LEVELS}
    flat = topology.flat
    levels = flat.level
    root_id = flat.root_id
    num_levels = len(ReservedBandwidth.LEVELS)
    for allocation in cm_manager.active:
        for node_id, counts in allocation.iter_node_counts_id():
            level = levels[node_id]
            if node_id == root_id or level >= num_levels:
                continue
            requirement = voc_uplink_requirement(allocation.tag, counts)
            cm_voc[ReservedBandwidth.LEVELS[level]] += requirement.out / 1000.0

    # Oktopus deploying the same accepted tenants as VOCs.
    ovoc_ledger = Ledger(topology)
    ovoc_manager = ClusterManager(
        ovoc_ledger, OktopusPlacer(ovoc_ledger), collect_wcs=False
    )
    run_arrivals_until_full(
        ovoc_manager, scaled, accepted, stop_on_rejection=False
    )
    ovoc = _per_level(ovoc_ledger)

    return ReservedBandwidth(
        cm_tag=cm_tag,
        cm_voc=cm_voc,
        ovoc=ovoc,
        tenants_deployed=len(accepted),
    )
