"""Event-driven admission-control simulation (paper §5 setup)."""

from repro.simulation.arrivals import Arrival, arrival_rate_for_load, poisson_arrivals
from repro.simulation.cluster import (
    ClusterManager,
    run_arrival_departure,
    run_arrivals_until_full,
)
from repro.simulation.metrics import RunMetrics, WcsStats
from repro.simulation.replicated import Replication, replicate
from repro.simulation.runner import (
    PLACER_NAMES,
    ReservedBandwidth,
    make_placer,
    measure_reserved_bandwidth,
    simulate_rejections,
)

__all__ = [
    "Arrival",
    "ClusterManager",
    "PLACER_NAMES",
    "ReservedBandwidth",
    "Replication",
    "RunMetrics",
    "WcsStats",
    "arrival_rate_for_load",
    "make_placer",
    "measure_reserved_bandwidth",
    "poisson_arrivals",
    "replicate",
    "run_arrival_departure",
    "run_arrivals_until_full",
    "simulate_rejections",
]
