"""Poisson tenant arrival / departure streams (paper §5 setup).

"Each simulation run consists of 10,000 Poisson tenant arrivals and
departures.  Arriving tenants are uniformly sampled at random from a pool
of 80 tenants.  We vary the mean arrival rate (lambda) to control the
load on a datacenter while keeping tenant dwell time (Td) fixed; the load
is Ts * lambda * Td / (2048 x 25)" — mean tenant size times offered
tenant-rate times dwell time over total slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.tag import Tag
from repro.errors import SimulationError

__all__ = [
    "Arrival",
    "arrival_rate_for_load",
    "arrival_stream",
    "diurnal_arrivals",
    "poisson_arrivals",
    "trace_arrivals",
]


@dataclass(frozen=True)
class Arrival:
    """One tenant arrival: when it comes, which tenant, how long it stays."""

    time: float
    tenant_index: int
    dwell: float


def arrival_rate_for_load(
    load: float, total_slots: int, mean_tenant_size: float, mean_dwell: float
) -> float:
    """Invert the paper's load formula: lambda = load*slots/(Ts*Td)."""
    if not 0 < load:
        raise SimulationError(f"load must be positive, got {load!r}")
    if mean_tenant_size <= 0 or mean_dwell <= 0 or total_slots <= 0:
        raise SimulationError("sizes, dwell and slots must be positive")
    return load * total_slots / (mean_tenant_size * mean_dwell)


def poisson_arrivals(
    pool: Sequence[Tag],
    count: int,
    load: float,
    total_slots: int,
    *,
    mean_dwell: float = 1.0,
    seed: int = 0,
) -> list[Arrival]:
    """Sample ``count`` Poisson arrivals with exponential dwell times.

    Tenants are drawn uniformly from ``pool``; inter-arrival gaps are
    exponential with the rate implied by ``load``.
    """
    if not pool:
        raise SimulationError("tenant pool is empty")
    if count <= 0:
        raise SimulationError(f"need a positive arrival count, got {count}")
    rng = np.random.default_rng(seed)
    mean_size = float(np.mean([tag.size for tag in pool]))
    rate = arrival_rate_for_load(load, total_slots, mean_size, mean_dwell)
    gaps = rng.exponential(1.0 / rate, size=count)
    times = np.cumsum(gaps)
    indices = rng.integers(0, len(pool), size=count)
    dwells = rng.exponential(mean_dwell, size=count)
    return [
        Arrival(float(t), int(i), float(d))
        for t, i, d in zip(times, indices, dwells)
    ]


def _stream_inputs(
    pool: Sequence[Tag], count: int, mean_dwell: float, block: int
) -> float:
    """Shared validation for the streaming generators; returns mean size."""
    if not pool:
        raise SimulationError("tenant pool is empty")
    if count <= 0:
        raise SimulationError(f"need a positive arrival count, got {count}")
    if mean_dwell <= 0:
        raise SimulationError(f"mean dwell must be positive, got {mean_dwell}")
    if block <= 0:
        raise SimulationError(f"block size must be positive, got {block}")
    return float(np.mean([tag.size for tag in pool]))


def arrival_stream(
    pool: Sequence[Tag],
    count: int,
    load: float,
    total_slots: int,
    *,
    mean_dwell: float = 1.0,
    seed: int = 0,
    block: int = 8192,
) -> Iterator[Arrival]:
    """Streaming :func:`poisson_arrivals`: O(block) memory at any count.

    Random draws happen in numpy blocks of ``block`` events (three bulk
    draws per block, same draw order as the materializing function), so
    a million-event service run never holds the event list.  With
    ``block >= count`` the stream is element-for-element identical to
    ``poisson_arrivals`` at the same seed; smaller blocks interleave the
    draws differently and give a statistically identical but distinct
    stream.
    """
    mean_size = _stream_inputs(pool, count, mean_dwell, block)
    rng = np.random.default_rng(seed)
    rate = arrival_rate_for_load(load, total_slots, mean_size, mean_dwell)
    clock = 0.0
    emitted = 0
    while emitted < count:
        n = min(block, count - emitted)
        gaps = rng.exponential(1.0 / rate, size=n)
        times = np.cumsum(gaps) + clock
        indices = rng.integers(0, len(pool), size=n)
        dwells = rng.exponential(mean_dwell, size=n)
        clock = float(times[-1])
        for t, i, d in zip(times, indices, dwells):
            yield Arrival(float(t), int(i), float(d))
        emitted += n


def diurnal_arrivals(
    pool: Sequence[Tag],
    count: int,
    load: float,
    total_slots: int,
    *,
    factors: Sequence[float] | None = None,
    day_length: float = 1.0,
    mean_dwell: float = 1.0,
    seed: int = 0,
    block: int = 8192,
) -> Iterator[Arrival]:
    """Diurnal load: the Poisson rate follows a cyclic window profile.

    ``factors`` gives one relative rate per window of the day (default: a
    24-window day/night cycle from
    :func:`repro.temporal.profile.diurnal_profile`); the factors are
    normalized by their mean so ``load`` stays the *time-averaged* load
    and only the shape changes.  Inter-arrival gaps are sampled as unit
    exponentials scaled by the instantaneous rate of the window the
    clock currently sits in — the standard piecewise-constant thinning
    equivalent — and dwell times stay exponential, so the stream drops
    into the same loops as the flat Poisson one.
    """
    mean_size = _stream_inputs(pool, count, mean_dwell, block)
    if factors is None:
        from repro.temporal.profile import diurnal_profile

        factors = diurnal_profile(24).factors
    factors = tuple(float(f) for f in factors)
    if not factors or min(factors) <= 0:
        raise SimulationError("diurnal factors must be positive")
    if day_length <= 0:
        raise SimulationError(f"day length must be positive, got {day_length}")
    rng = np.random.default_rng(seed)
    base_rate = arrival_rate_for_load(load, total_slots, mean_size, mean_dwell)
    mean_factor = sum(factors) / len(factors)
    rates = tuple(base_rate * f / mean_factor for f in factors)
    window_length = day_length / len(factors)
    clock = 0.0
    emitted = 0
    while emitted < count:
        n = min(block, count - emitted)
        units = rng.exponential(1.0, size=n)
        indices = rng.integers(0, len(pool), size=n)
        dwells = rng.exponential(mean_dwell, size=n)
        for u, i, d in zip(units, indices, dwells):
            window = int(clock / window_length) % len(rates)
            clock += float(u) / rates[window]
            yield Arrival(clock, int(i), float(d))
        emitted += n


def trace_arrivals(
    events: Iterable[tuple[float, int, float]], pool_size: int | None = None
) -> Iterator[Arrival]:
    """Adapt a recorded ``(time, tenant_index, dwell)`` trace to Arrivals.

    Validates what the event loops rely on — non-decreasing times,
    positive dwells, in-range tenant indices — one event at a time, so
    an arbitrarily long trace file can be generated through without
    materialization.
    """
    last = -np.inf
    for time, tenant_index, dwell in events:
        time = float(time)
        tenant_index = int(tenant_index)
        dwell = float(dwell)
        if time < last:
            raise SimulationError(
                f"trace times must be non-decreasing ({time} after {last})"
            )
        if dwell <= 0:
            raise SimulationError(f"trace dwell must be positive, got {dwell}")
        if tenant_index < 0 or (pool_size is not None and tenant_index >= pool_size):
            raise SimulationError(f"trace tenant index {tenant_index} out of range")
        last = time
        yield Arrival(time, tenant_index, dwell)
