"""Poisson tenant arrival / departure streams (paper §5 setup).

"Each simulation run consists of 10,000 Poisson tenant arrivals and
departures.  Arriving tenants are uniformly sampled at random from a pool
of 80 tenants.  We vary the mean arrival rate (lambda) to control the
load on a datacenter while keeping tenant dwell time (Td) fixed; the load
is Ts * lambda * Td / (2048 x 25)" — mean tenant size times offered
tenant-rate times dwell time over total slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.tag import Tag
from repro.errors import SimulationError

__all__ = ["Arrival", "arrival_rate_for_load", "poisson_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One tenant arrival: when it comes, which tenant, how long it stays."""

    time: float
    tenant_index: int
    dwell: float


def arrival_rate_for_load(
    load: float, total_slots: int, mean_tenant_size: float, mean_dwell: float
) -> float:
    """Invert the paper's load formula: lambda = load*slots/(Ts*Td)."""
    if not 0 < load:
        raise SimulationError(f"load must be positive, got {load!r}")
    if mean_tenant_size <= 0 or mean_dwell <= 0 or total_slots <= 0:
        raise SimulationError("sizes, dwell and slots must be positive")
    return load * total_slots / (mean_tenant_size * mean_dwell)


def poisson_arrivals(
    pool: Sequence[Tag],
    count: int,
    load: float,
    total_slots: int,
    *,
    mean_dwell: float = 1.0,
    seed: int = 0,
) -> list[Arrival]:
    """Sample ``count`` Poisson arrivals with exponential dwell times.

    Tenants are drawn uniformly from ``pool``; inter-arrival gaps are
    exponential with the rate implied by ``load``.
    """
    if not pool:
        raise SimulationError("tenant pool is empty")
    if count <= 0:
        raise SimulationError(f"need a positive arrival count, got {count}")
    rng = np.random.default_rng(seed)
    mean_size = float(np.mean([tag.size for tag in pool]))
    rate = arrival_rate_for_load(load, total_slots, mean_size, mean_dwell)
    gaps = rng.exponential(1.0 / rate, size=count)
    times = np.cumsum(gaps)
    indices = rng.integers(0, len(pool), size=count)
    dwells = rng.exponential(mean_dwell, size=count)
    return [
        Arrival(float(t), int(i), float(d))
        for t, i, d in zip(times, indices, dwells)
    ]
