"""Declarative scenario definitions for the §5 evaluation harness.

A :class:`Scenario` is a frozen description of one experiment: which
tenant pool to draw from, which placer variants to compare, which
topologies to build, and the load / B_max / seed grids to sweep.  The
:class:`~repro.engine.engine.Engine` expands a scenario into a flat
:class:`Trial` matrix and executes it serially or across worker
processes; each trial produces one :class:`TrialResult`.

Scenarios carry no behaviour beyond grid bookkeeping — the per-kind
execution logic lives in :mod:`repro.engine.runners` and the
presentation (tables, charts) stays with the experiment modules.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.errors import EngineError
from repro.placement.ha import HaPolicy
from repro.topology.builder import DatacenterSpec

__all__ = [
    "Scenario",
    "ScenarioResult",
    "TopologyCase",
    "Trial",
    "TrialResult",
    "Variant",
]

# Payload fields that record wall-clock time: excluded from fingerprints
# so that serial and parallel runs of the same trial compare equal.
_TIMING_FIELDS = frozenset(
    {"runtime_seconds", "seconds", "elapsed", "recover_seconds", "timing"}
)


@dataclass(frozen=True)
class Variant:
    """One algorithm/policy combination on the comparison axis.

    ``placer`` names an entry of
    :data:`repro.simulation.runner.PLACER_NAMES` for placement kinds, or
    an abstraction mode (``"tag"`` / ``"hose"``) for enforcement kinds.
    ``name`` is the display label (e.g. ``"cm+oppha"``).
    """

    name: str
    placer: str = ""
    ha: HaPolicy | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise EngineError("variant needs a non-empty name")
        if not self.placer:
            object.__setattr__(self, "placer", self.name)


@dataclass(frozen=True)
class TopologyCase:
    """One point on the topology axis: a labelled datacenter spec."""

    label: str
    spec: DatacenterSpec


@dataclass(frozen=True)
class Scenario:
    """Frozen description of one experiment's full trial grid.

    The grid is the cross product ``topologies x loads x bmaxes x xs x
    variants x seeds`` (in that nesting order, outermost first).  ``xs``
    is a kind-specific axis (tenant sizes for ``runtime``, sender counts
    for ``enforcement``); kinds that don't use an axis leave it at its
    single-point default.  ``params`` holds kind-specific knobs as a
    sorted tuple of pairs so the dataclass stays hashable.
    """

    name: str
    title: str
    kind: str
    pool: str = "bing"
    variants: tuple[Variant, ...] = (Variant("cm"),)
    topologies: tuple[TopologyCase, ...] = ()
    loads: tuple[float, ...] = (0.7,)
    bmaxes: tuple[float, ...] = (800.0,)
    seeds: tuple[int, ...] = (0,)
    xs: tuple[Any, ...] = (None,)
    arrivals: int = 600
    pods: int = 2
    laa_level: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise EngineError("scenario needs a non-empty name")
        if not self.kind:
            raise EngineError(f"scenario {self.name!r} needs a kind")
        for axis in ("variants", "loads", "bmaxes", "seeds", "xs"):
            if not getattr(self, axis):
                raise EngineError(f"scenario {self.name!r}: empty {axis} axis")

    # ------------------------------------------------------------------
    def topology_cases(self) -> tuple[TopologyCase, ...]:
        """Explicit topology axis, or the default built from ``pods``."""
        if self.topologies:
            return self.topologies
        return (TopologyCase(f"{self.pods}p", DatacenterSpec(pods=self.pods)),)

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    @property
    def trial_count(self) -> int:
        return (
            len(self.topology_cases())
            * len(self.loads)
            * len(self.bmaxes)
            * len(self.xs)
            * len(self.variants)
            * len(self.seeds)
        )

    # ------------------------------------------------------------------
    def override(self, **changes: Any) -> "Scenario":
        """A copy with grid overrides applied (CLI ``--seeds 0,1,2`` etc.).

        Sequence-valued axes are coerced to tuples.  Overriding ``pods``
        also rewrites any explicit topology cases so the new pod count
        applies to every point on the topology axis.
        """
        changes = dict(changes)
        pods = changes.get("pods")
        # Rewrite the explicit topology axis for a new pod count — unless
        # the caller supplied their own topologies in the same call.
        if pods is not None and self.topologies and changes.get("topologies") is None:
            changes["topologies"] = tuple(
                TopologyCase(case.label, dataclasses.replace(case.spec, pods=pods))
                for case in self.topologies
            )
        for axis in ("variants", "topologies", "loads", "bmaxes", "seeds", "xs"):
            if axis in changes and changes[axis] is not None:
                changes[axis] = tuple(changes[axis])
        changes = {k: v for k, v in changes.items() if v is not None}
        return dataclasses.replace(self, **changes)

    def expand(self) -> list["Trial"]:
        """Flatten the grid into the ordered trial matrix."""
        trials: list[Trial] = []
        for topology in self.topology_cases():
            for load in self.loads:
                for bmax in self.bmaxes:
                    for x in self.xs:
                        for variant in self.variants:
                            for seed in self.seeds:
                                trials.append(
                                    Trial(
                                        scenario=self.name,
                                        kind=self.kind,
                                        index=len(trials),
                                        pool=self.pool,
                                        variant=variant,
                                        topology=topology,
                                        load=load,
                                        bmax=bmax,
                                        seed=seed,
                                        x=x,
                                        arrivals=self.arrivals,
                                        laa_level=self.laa_level,
                                        params=self.params,
                                    )
                                )
        return trials


@dataclass(frozen=True)
class Trial:
    """One fully-bound point of a scenario's grid (picklable)."""

    scenario: str
    kind: str
    index: int
    pool: str
    variant: Variant
    topology: TopologyCase
    load: float
    bmax: float
    seed: int
    x: Any = None
    arrivals: int = 600
    laa_level: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default


def _canonical(obj: Any) -> Any:
    """Recursively normalize a payload, dropping wall-clock fields."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.name not in _TIMING_FIELDS
        }
    if isinstance(obj, dict):
        return {
            key: _canonical(value)
            for key, value in sorted(obj.items())
            if key not in _TIMING_FIELDS
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, float):
        return repr(obj)  # full precision: fingerprints are bit-exact
    return obj


@dataclass(frozen=True)
class TrialResult:
    """One trial's outcome: the kind-specific payload plus wall time.

    ``cached`` marks results served from a
    :class:`~repro.results.store.ResultStore` instead of executed;
    ``elapsed`` then reports the *original* execution's wall time.
    ``telemetry`` holds the trial's trace export (a plain dict, see
    :class:`repro.obs.trace.TraceRecorder`) when instrumentation was on,
    else ``None``; like ``elapsed`` it is observation, not outcome, and
    never participates in :meth:`fingerprint`.
    """

    trial: Trial
    payload: Any
    elapsed: float
    cached: bool = False
    telemetry: Any = None

    def fingerprint(self) -> str:
        """Deterministic identity of the trial and its metrics.

        Excludes wall-clock measurements (``elapsed`` and any
        ``runtime_seconds``-style payload field) so a serial run and an
        ``n_jobs > 1`` run of the same scenario fingerprint identically.
        """
        return repr((_canonical(self.trial), _canonical(self.payload)))


@dataclass
class ScenarioResult:
    """All trial results of one engine run, in grid order.

    ``cache_hits`` counts the results served from a store instead of
    executed; ``len(result) - result.cache_hits`` trials actually ran.
    """

    scenario: Scenario
    results: list[TrialResult] = field(default_factory=list)
    n_jobs: int = 1
    elapsed: float = 0.0
    cache_hits: int = 0

    @property
    def executed(self) -> int:
        return len(self.results) - self.cache_hits

    def __iter__(self) -> Iterator[TrialResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def payloads(self) -> list[Any]:
        return [result.payload for result in self.results]

    def by_variant(self, name: str) -> list[TrialResult]:
        return [r for r in self.results if r.trial.variant.name == name]

    def fingerprints(self) -> list[str]:
        return [result.fingerprint() for result in self.results]
