"""Scenario registry: name -> (scenario, presenter) for the CLI.

Experiment modules call :func:`register` at import time; the CLI (and
anything else that wants "every experiment in the repo") calls
:func:`load_all` to trigger those imports, then looks scenarios up by
canonical name or alias.  Presenters render a finished
:class:`~repro.engine.scenario.ScenarioResult` to stdout — the engine
itself never prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.engine.scenario import Scenario, ScenarioResult
from repro.errors import EngineError

__all__ = ["RegisteredScenario", "register", "get", "names", "load_all", "entries"]

Presenter = Callable[[ScenarioResult], None]


@dataclass(frozen=True)
class RegisteredScenario:
    """One registry row: the default scenario plus its renderer.

    ``cli`` is the experiment's own ``main(argv)`` — it understands the
    experiment-specific flags (``--workload``, ``--max-senders``, ...)
    that the generic ``repro run`` grid interface does not.
    """

    scenario: Scenario
    present: Presenter
    aliases: tuple[str, ...] = ()
    cli: Callable[[list[str]], None] | None = None

    @property
    def name(self) -> str:
        return self.scenario.name


_REGISTRY: dict[str, RegisteredScenario] = {}
_ALIASES: dict[str, str] = {}


def register(
    scenario: Scenario,
    present: Presenter,
    *,
    aliases: tuple[str, ...] = (),
    cli: Callable[[list[str]], None] | None = None,
) -> RegisteredScenario:
    """Register ``scenario`` under its canonical name (plus aliases).

    Re-registering the same name replaces the entry (supports module
    reloads); an alias may not shadow a different scenario's name.
    """
    entry = RegisteredScenario(scenario, present, aliases, cli)
    if _ALIASES.get(scenario.name, scenario.name) != scenario.name:
        raise EngineError(
            f"scenario name {scenario.name!r} collides with an alias of "
            f"{_ALIASES[scenario.name]!r}"
        )
    _REGISTRY[scenario.name] = entry
    for alias in aliases:
        existing = _ALIASES.get(alias)
        if alias in _REGISTRY or (existing is not None and existing != scenario.name):
            raise EngineError(f"alias {alias!r} collides with an existing scenario")
        _ALIASES[alias] = scenario.name
    return entry


def get(name: str) -> RegisteredScenario:
    """Look up a scenario by canonical name or alias."""
    load_all()
    canonical = _ALIASES.get(name, name)
    entry = _REGISTRY.get(canonical)
    if entry is None:
        raise EngineError(
            f"unknown scenario {name!r}; registered: {', '.join(names())}"
        )
    return entry


def names() -> list[str]:
    """Canonical scenario names in registration order."""
    load_all()
    return list(_REGISTRY)


def entries() -> Iterator[RegisteredScenario]:
    load_all()
    return iter(list(_REGISTRY.values()))


def load_all() -> None:
    """Import the experiment modules so their scenarios register."""
    import repro.experiments  # noqa: F401  (import-time registration)
