"""Unified scenario engine: declarative experiments, parallel trials.

``repro.engine`` turns every §5 experiment into data: a frozen
:class:`Scenario` describing the pool, placer variants, topologies and
load/B_max/seed grids, expanded by the :class:`Engine` into a flat trial
matrix and executed serially or across ``multiprocessing`` workers with
deterministic per-trial seeding.  The :mod:`~repro.engine.registry` maps
scenario names to their definitions and presenters so the CLI can list
and run any experiment in the repo::

    from repro.engine import Engine, registry

    entry = registry.get("fig08")
    result = Engine(n_jobs=4).run(entry.scenario.override(seeds=range(8)))
    entry.present(result)
"""

from repro.engine import registry
from repro.engine.context import (
    POOL_NAMES,
    TrialContext,
    build_context,
    get_pool,
    get_scaled_pool,
    get_topology,
)
from repro.engine.engine import MAX_AUTO_JOBS, Engine, default_jobs
from repro.engine.runners import (
    KIND_AXES,
    RUNNERS,
    execute_trial,
    kind_axes,
    register_runner,
)
from repro.engine.scenario import (
    Scenario,
    ScenarioResult,
    TopologyCase,
    Trial,
    TrialResult,
    Variant,
)

__all__ = [
    "Engine",
    "KIND_AXES",
    "MAX_AUTO_JOBS",
    "POOL_NAMES",
    "RUNNERS",
    "RegisteredScenario",
    "Scenario",
    "ScenarioResult",
    "TopologyCase",
    "Trial",
    "TrialContext",
    "TrialResult",
    "Variant",
    "build_context",
    "default_jobs",
    "execute_trial",
    "get_pool",
    "kind_axes",
    "get_scaled_pool",
    "get_topology",
    "register_runner",
    "registry",
]

from repro.engine.registry import RegisteredScenario  # noqa: E402  (re-export)
