"""The scenario execution engine: grid expansion + (parallel) dispatch.

``Engine(n_jobs=1)`` runs a scenario's trial matrix in-process;
``Engine(n_jobs=4)`` fans the trials out over a spawn-based
``multiprocessing`` pool.  Trials are fully bound before dispatch (every
trial carries its own seed from the scenario's seed grid), so the result
list is identical — bit-for-bit on every metric — whichever mode runs
it; only wall-clock fields differ.  Results always come back in grid
order regardless of worker scheduling.

``run(..., store=...)`` makes a run persistent and resumable: trials
whose fingerprint is already in the store are served from it without
executing, and every miss is recorded the moment it completes, so an
interrupted sweep picks up where it left off.  ``run(..., shard=(i,
n))`` executes only the i-th deterministic stride of the matrix — each
shard writes its own store and ``repro results merge`` recombines them.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable

from repro.engine.runners import SERIAL_ONLY_KINDS, execute_trial
from repro.engine.scenario import Scenario, ScenarioResult, Trial, TrialResult
from repro.errors import EngineError

__all__ = ["Engine", "MAX_AUTO_JOBS", "default_jobs"]

# Cap for the automatic --jobs default: spawn startup (a fresh
# interpreter importing numpy + repro per worker) outgrows the win
# beyond this for the grid sizes the scenarios ship with.  Explicit
# --jobs N overrides the cap.
MAX_AUTO_JOBS = 8


def default_jobs(kind: str | None = None) -> int:
    """Worker count used when the caller doesn't pass ``--jobs``.

    Resolves to ``os.cpu_count()`` capped at :data:`MAX_AUTO_JOBS`.
    Wall-clock kinds (:data:`SERIAL_ONLY_KINDS`, e.g. ``runtime``) pin
    to 1 — their payload is a timing that CPU contention would corrupt.
    """
    if kind is not None and kind in SERIAL_ONLY_KINDS:
        return 1
    return max(1, min(os.cpu_count() or 1, MAX_AUTO_JOBS))


class Engine:
    """Expands scenarios into trial matrices and executes them.

    Parameters
    ----------
    n_jobs:
        Worker process count.  ``1`` (default) runs serially in-process;
        ``0`` means one worker per CPU.  Workers are started with the
        ``spawn`` method so the engine behaves identically on every
        platform and never inherits dirty interpreter state.
    """

    def __init__(self, n_jobs: int = 1, *, mp_context: str = "spawn") -> None:
        if n_jobs < 0:
            raise EngineError(f"n_jobs must be >= 0, got {n_jobs}")
        if n_jobs == 0:
            n_jobs = multiprocessing.cpu_count()
        self.n_jobs = n_jobs
        self.mp_context = mp_context

    def expand(self, scenario: Scenario) -> list[Trial]:
        """The scenario's flat, ordered trial matrix (no execution)."""
        return scenario.expand()

    def run(
        self,
        scenario: Scenario,
        *,
        store: Any | None = None,
        shard: Any | None = None,
        progress: Any | None = None,
    ) -> ScenarioResult:
        """Execute every trial of ``scenario``; results in grid order.

        ``store`` is any object with the
        :class:`~repro.results.store.ResultStore` protocol
        (``cached_result(trial)`` / ``record(result)``): hits skip
        execution, misses are recorded as they complete.  ``shard`` is a
        :class:`~repro.results.sharding.ShardSpec` (or a plain ``(index,
        count)`` tuple) restricting the run to that deterministic stride
        of the matrix.

        ``progress`` is a :class:`~repro.obs.progress.ProgressReporter`
        (or anything with its ``begin``/``update``/``close`` protocol):
        ``begin`` fires once after the cache scan, ``update`` per
        executed trial as it completes (worker order, not grid order),
        ``close`` when the run ends — even on error, so a live status
        line never swallows the traceback that follows it.

        Results executed with instrumentation on carry a telemetry
        export (see ``execute_trial``); when a ``store`` is present each
        export is persisted as a ``telemetry`` row next to the trial row
        the moment it completes.

        Kinds in :data:`SERIAL_ONLY_KINDS` (wall-clock measurements)
        always run serially — concurrent workers would contend for CPU
        and corrupt the timings that are their payload.
        """
        trials = self.expand(scenario)
        if shard is not None:
            if isinstance(shard, tuple):
                # Lazy import: repro.results depends on repro.engine, so
                # the reverse edge must not exist at module-import time.
                from repro.results.sharding import ShardSpec

                shard = ShardSpec(*shard)
            trials = shard.select(trials)

        started = time.perf_counter()
        by_index: dict[int, TrialResult] = {}
        pending = trials
        if store is not None:
            pending = []
            for trial in trials:
                hit = store.cached_result(trial)
                if hit is not None:
                    by_index[trial.index] = hit
                else:
                    pending.append(trial)
        record = self._make_recorder(store)

        # Effective worker count — what actually ran, reported as
        # ScenarioResult.n_jobs: serial-only kinds and sub-2-trial
        # workloads never use a pool, and a pool never outnumbers the
        # trials left to execute after cache hits.
        if scenario.kind in SERIAL_ONLY_KINDS or len(pending) < 2:
            n_jobs = 1
        else:
            n_jobs = min(self.n_jobs, len(pending))
        if progress is not None:
            progress.begin(
                total=len(trials),
                cache_hits=len(trials) - len(pending),
                n_jobs=n_jobs,
            )
        try:
            if n_jobs == 1:
                for trial in pending:
                    result = execute_trial(trial)
                    if record is not None:
                        record(result)
                    by_index[trial.index] = result
                    if progress is not None:
                        progress.update(result)
            else:
                self._run_parallel(pending, n_jobs, by_index, record, progress)
        finally:
            if progress is not None:
                progress.close()
        return ScenarioResult(
            scenario=scenario,
            results=[by_index[trial.index] for trial in trials],
            n_jobs=n_jobs,
            elapsed=time.perf_counter() - started,
            cache_hits=len(trials) - len(pending),
        )

    @staticmethod
    def _make_recorder(store: Any | None) -> Callable[[TrialResult], Any] | None:
        """The per-result persistence hook: trial row + telemetry row.

        Telemetry persistence piggybacks on the existing record path so
        an interrupted instrumented run keeps its traces for everything
        that completed, exactly like the trial rows themselves.
        """
        if store is None:
            return None
        record_payload = getattr(store, "record_payload", None)
        if record_payload is None:
            # Minimal store protocol (cached_result/record only): trial
            # rows persist, telemetry has nowhere to go.
            return store.record

        def record(result: TrialResult) -> None:
            store.record(result)
            if result.telemetry is not None:
                # Lazy import: same direction rule as the shard import
                # above — repro.results depends on repro.engine.
                from repro.results.telemetry import record_telemetry

                record_telemetry(store, result)

        return record

    def _run_parallel(
        self,
        trials: list[Trial],
        workers: int,
        by_index: dict[int, TrialResult],
        record: Callable[[TrialResult], Any] | None,
        progress: Any | None = None,
    ) -> None:
        context = multiprocessing.get_context(self.mp_context)
        # chunksize=1: trial runtimes vary wildly across a grid (a 90%
        # load point costs far more than a 10% one), so fine-grained
        # dispatch beats pre-chunking.  imap_unordered lets each result
        # reach the store the moment its worker finishes — an
        # interrupted parallel run keeps everything completed so far —
        # and grid order is restored from the trial indices afterwards.
        with context.Pool(processes=workers) as pool:
            for result in pool.imap_unordered(execute_trial, trials, chunksize=1):
                if record is not None:
                    record(result)
                by_index[result.trial.index] = result
                if progress is not None:
                    progress.update(result)
