"""The scenario execution engine: grid expansion + (parallel) dispatch.

``Engine(n_jobs=1)`` runs a scenario's trial matrix in-process;
``Engine(n_jobs=4)`` fans the trials out over a spawn-based
``multiprocessing`` pool.  Trials are fully bound before dispatch (every
trial carries its own seed from the scenario's seed grid), so the result
list is identical — bit-for-bit on every metric — whichever mode runs
it; only wall-clock fields differ.  Results always come back in grid
order regardless of worker scheduling.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.engine.runners import SERIAL_ONLY_KINDS, execute_trial
from repro.engine.scenario import Scenario, ScenarioResult, Trial, TrialResult
from repro.errors import EngineError

__all__ = ["Engine"]


class Engine:
    """Expands scenarios into trial matrices and executes them.

    Parameters
    ----------
    n_jobs:
        Worker process count.  ``1`` (default) runs serially in-process;
        ``0`` means one worker per CPU.  Workers are started with the
        ``spawn`` method so the engine behaves identically on every
        platform and never inherits dirty interpreter state.
    """

    def __init__(self, n_jobs: int = 1, *, mp_context: str = "spawn") -> None:
        if n_jobs < 0:
            raise EngineError(f"n_jobs must be >= 0, got {n_jobs}")
        if n_jobs == 0:
            n_jobs = multiprocessing.cpu_count()
        self.n_jobs = n_jobs
        self.mp_context = mp_context

    def expand(self, scenario: Scenario) -> list[Trial]:
        """The scenario's flat, ordered trial matrix (no execution)."""
        return scenario.expand()

    def run(self, scenario: Scenario) -> ScenarioResult:
        """Execute every trial of ``scenario``; results in grid order.

        Kinds in :data:`SERIAL_ONLY_KINDS` (wall-clock measurements)
        always run serially — concurrent workers would contend for CPU
        and corrupt the timings that are their payload.
        """
        trials = self.expand(scenario)
        # Effective worker count — what actually ran, reported as
        # ScenarioResult.n_jobs: serial-only kinds and sub-2-trial grids
        # never use a pool, and a pool never outnumbers the trials.
        if scenario.kind in SERIAL_ONLY_KINDS or len(trials) < 2:
            n_jobs = 1
        else:
            n_jobs = min(self.n_jobs, len(trials))
        started = time.perf_counter()
        if n_jobs == 1:
            results = [execute_trial(trial) for trial in trials]
        else:
            results = self._run_parallel(trials, n_jobs)
        return ScenarioResult(
            scenario=scenario,
            results=results,
            n_jobs=n_jobs,
            elapsed=time.perf_counter() - started,
        )

    def _run_parallel(self, trials: list[Trial], workers: int) -> list[TrialResult]:
        context = multiprocessing.get_context(self.mp_context)
        # chunksize=1: trial runtimes vary wildly across a grid (a 90%
        # load point costs far more than a 10% one), so fine-grained
        # dispatch beats pre-chunking.  pool.map preserves input order.
        with context.Pool(processes=workers) as pool:
            return pool.map(execute_trial, trials, chunksize=1)
