"""Per-kind trial execution functions.

Each runner takes one fully-bound :class:`~repro.engine.scenario.Trial`
and returns a picklable payload; :func:`execute_trial` wraps the payload
into a :class:`TrialResult` with wall time.  All runners are module-level
functions so ``multiprocessing`` spawn workers can import them by
reference.

Kinds shipped with the repo:

========== ==========================================================
kind       payload
========== ==========================================================
rejection  :class:`repro.simulation.metrics.RunMetrics`
reserved   :class:`repro.simulation.runner.ReservedBandwidth`
inference  ``{"scores": [...], "applications": int}``
runtime    ``{"seconds": float, "placed": bool}`` or ``None`` (skipped)
enforce    :class:`repro.enforcement.scenarios.Fig13Point`
hose_fail  :class:`repro.enforcement.scenarios.Fig4Outcome`
temporal   ``{"windows", "tenants", "admitted", "utilization"}``
failure    survival/churn/recovery dict (see ``run_failure_trial``)
service    streaming-loop report dict (see ``run_service_trial``)
survey     raw Fig. 1 ratio data (dict)
========== ==========================================================

New kinds can be added with :func:`register_runner`.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.engine.context import build_context, get_pool, get_topology
from repro.engine.scenario import Trial, TrialResult
from repro.errors import EngineError
from repro.obs import core as obs
from repro.obs.trace import TraceRecorder
from repro.simulation.arrivals import poisson_arrivals
from repro.simulation.cluster import run_arrival_departure
from repro.simulation.runner import measure_reserved_bandwidth

__all__ = ["KIND_AXES", "RUNNERS", "execute_trial", "kind_axes", "register_runner"]


def run_rejection_trial(trial: Trial):
    """The §5.1 arrival/departure loop (Figs. 7-12).

    Semantically identical to
    :func:`repro.simulation.runner.simulate_rejections` (a test pins the
    two together) but built through :func:`build_context`, whose
    process-wide caches let repeated trials skip re-scaling the pool and
    re-building the topology.
    """
    context = build_context(trial)
    events = poisson_arrivals(
        context.pool,
        trial.arrivals,
        trial.load,
        context.topology.total_slots,
        seed=trial.seed,
    )
    return run_arrival_departure(context.manager, events, context.pool)


def run_reserved_trial(trial: Trial):
    """The Table 1 loop on the idealized unlimited topology."""
    return measure_reserved_bandwidth(
        get_pool(trial.pool),
        bmax=trial.bmax,
        spec=trial.topology.spec,
        seed=trial.seed,
        max_arrivals=trial.param("max_arrivals", 20_000),
        topology=get_topology(trial.topology.spec, unlimited=True),
    )


def run_inference_trial(trial: Trial) -> dict[str, Any]:
    """The §3 TAG-inference pipeline over one seed's synthetic traces."""
    from repro.inference.ami import ami
    from repro.inference.builder import infer_components
    from repro.inference.traffic import synthesize_trace

    max_vms = trial.param("max_vms", 60)
    max_applications = trial.param("max_applications", 20)
    noise_fraction = trial.param("noise_fraction", 0.05)
    pool = [
        tag
        for tag in get_pool(trial.pool)
        if tag.num_tiers >= 2 and tag.size <= max_vms
    ][:max_applications]
    scores = []
    for index, tag in enumerate(pool):
        trace = synthesize_trace(
            tag, seed=trial.seed + index, noise_fraction=noise_fraction
        )
        labels = infer_components(trace, seed=trial.seed + index)
        scores.append(ami(trace.labels, labels))
    return {
        "scores": scores,
        "mean": float(np.mean(scores)) if scores else 0.0,
        "applications": len(scores),
    }


def run_runtime_trial(trial: Trial) -> dict[str, Any] | None:
    """Time one single-tenant placement on an empty datacenter.

    Builds only what the measurement touches (no tenant pool, no
    cluster manager): a fresh ledger over the cached topology plus the
    placer under test.
    """
    from repro.placement.base import Placement
    from repro.simulation.runner import make_placer
    from repro.topology.ledger import Ledger
    from repro.workloads.patterns import three_tier

    vms = int(trial.x)
    cap = trial.param("secondnet_size_cap", 120)
    if trial.variant.placer == "secondnet" and vms > cap:
        return None  # O(N^2) pipes; the paper reports tens of minutes
    third = max(1, vms // 3)
    tenant = three_tier(
        f"rt-{vms}", (vms - 2 * third, third, third), b1=200.0, b2=50.0, b3=20.0
    )
    ledger = Ledger(get_topology(trial.topology.spec))
    placer = make_placer(trial.variant.placer, ledger, trial.variant.ha)
    # obs.timed is perf_counter either way; the reading IS the payload.
    with obs.timed("place") as timer:
        result = placer.place(tenant)
    return {
        "seconds": timer.seconds,
        "placed": isinstance(result, Placement),
    }


def run_enforce_trial(trial: Trial):
    """One x-axis point of Fig. 13 (ElasticSwitch-style enforcement)."""
    from repro.enforcement.scenarios import fig13_scenario

    return fig13_scenario(
        int(trial.x),
        mode=trial.variant.placer,
        guarantee=trial.param("guarantee", 450.0),
        bottleneck=trial.param("bottleneck", 1000.0),
    )


def run_hose_failure_trial(trial: Trial):
    """The Fig. 4 motivation scenario under one abstraction."""
    from repro.enforcement.scenarios import fig4_scenario

    return fig4_scenario(
        mode=trial.variant.placer,
        **{key: value for key, value in trial.params},
    )


def run_temporal_trial(trial: Trial) -> dict[str, Any]:
    """§6 window-aware admission capacity at one window count.

    Admits a deterministic day/night tenant mix into a fresh W-plane
    cluster; the variant axis selects the accounting — ``window`` keeps
    per-window reservations, ``peak`` flattens every tenant to its peak
    (the classic time-unaware system).
    """
    from repro.temporal.admission import TemporalCluster, peak_equivalent
    from repro.temporal.profile import TemporalTag, diurnal_profile
    from repro.workloads.patterns import mapreduce, three_tier

    mode = trial.variant.placer
    if mode not in ("window", "peak"):
        raise EngineError(
            f"temporal variant must be 'window' or 'peak', got {mode!r}"
        )
    windows = int(trial.x)
    tenants = int(trial.param("tenants", 48))
    trough = float(trial.param("trough", 0.2))
    day = diurnal_profile(windows, peak_window=windows // 3, trough=trough)
    night = diurnal_profile(
        windows, peak_window=windows // 3 + windows // 2, trough=trough
    )
    cluster = TemporalCluster(trial.topology.spec, windows=windows)
    admitted = 0
    for index in range(tenants):
        if index % 2 == 0:
            tenant = TemporalTag(
                three_tier(f"web-{index}", (4, 4, 2), 675.0, 225.0, 60.0), day
            )
        else:
            tenant = TemporalTag(
                mapreduce(f"batch-{index}", 6, 3, 600.0, intra_bw=240.0), night
            )
        if mode == "peak":
            tenant = peak_equivalent(tenant)
        if cluster.admit(tenant) is not None:
            admitted += 1
    return {
        "windows": windows,
        "tenants": tenants,
        "admitted": admitted,
        "utilization": [
            cluster.window_utilization(window, level=0)
            for window in range(windows)
        ],
    }


def run_failure_trial(trial: Trial) -> dict[str, Any]:
    """Failure injection + recovery on a (default: heterogeneous) fabric.

    ``x`` is the failed-server fraction; params ``switches``/``links``
    set the ToR-switch and ToR-uplink failure counts, and ``hetero``
    (default 1) selects the deterministic mixed-rack variant of the
    spec over the symmetric tree.  ``recover_seconds`` in the payload is
    wall clock and excluded from fingerprints (see ``_TIMING_FIELDS``).
    """
    from repro.engine.context import get_hetero_topology, get_scaled_pool
    from repro.simulation.failures import run_failure_scenario

    topology = (
        get_hetero_topology(trial.topology.spec)
        if trial.param("hetero", 1)
        else get_topology(trial.topology.spec)
    )
    return run_failure_scenario(
        topology,
        list(get_scaled_pool(trial.pool, trial.bmax)),
        placer_name=trial.variant.placer,
        ha=trial.variant.ha,
        load=trial.load,
        arrivals=trial.arrivals,
        seed=trial.seed,
        fail_fraction=float(trial.x),
        switch_failures=int(trial.param("switches", 1)),
        link_failures=int(trial.param("links", 1)),
    )


def run_service_trial(trial: Trial) -> dict[str, Any]:
    """Cohort-batched service loop over a streaming arrival generator.

    Streams ``trial.arrivals`` events (O(block) memory at any count)
    through :class:`~repro.simulation.service.ServiceLoop` on a fresh
    ledger.  Params: ``load_profile`` picks the generator (``poisson``
    default, or ``diurnal`` for the cyclic day/night rate), ``cohort``
    the admission batch size, ``heartbeat`` the events between
    utilization samples.  The payload's ledger ``fingerprint`` makes two
    runs comparable bit-for-bit; wall-clock lives under ``timing``,
    which fingerprinting and the codec both treat as non-deterministic.
    """
    from repro.engine.context import get_scaled_pool
    from repro.simulation.arrivals import arrival_stream, diurnal_arrivals
    from repro.simulation.runner import make_placer
    from repro.simulation.service import ServiceLoop, ledger_fingerprint
    from repro.topology.ledger import Ledger

    pool = list(get_scaled_pool(trial.pool, trial.bmax))
    topology = get_topology(trial.topology.spec)
    ledger = Ledger(topology)
    placer = make_placer(trial.variant.placer, ledger, trial.variant.ha)
    profile = str(trial.param("load_profile", "poisson"))
    if profile == "poisson":
        events = arrival_stream(
            pool, trial.arrivals, trial.load, topology.total_slots, seed=trial.seed
        )
    elif profile == "diurnal":
        events = diurnal_arrivals(
            pool, trial.arrivals, trial.load, topology.total_slots, seed=trial.seed
        )
    else:
        raise EngineError(
            f"load_profile must be 'poisson' or 'diurnal', got {profile!r}"
        )
    loop = ServiceLoop(
        ledger,
        placer,
        pool,
        cohort=int(trial.param("cohort", 64)),
        heartbeat=int(trial.param("heartbeat", 4096)),
    )
    report = loop.run(events)
    report["load_profile"] = profile
    report["cohort"] = loop.cohort
    report["fingerprint"] = ledger_fingerprint(ledger)
    return report


def run_survey_trial(trial: Trial) -> dict[str, Any]:
    """Raw Fig. 1 data: workload demand vs datacenter provisioning."""
    from repro.workloads.survey import DATACENTERS, WORKLOADS, datacenter_ratios

    dc_rows = []
    for dc in DATACENTERS:
        ratios = datacenter_ratios(dc)
        dc_rows.append(
            (dc.name, ratios["server"], ratios["tor"], ratios["aggregation"])
        )
    interactive = [
        float(np.sqrt(w.low * w.high)) for w in WORKLOADS if w.kind == "interactive"
    ]
    batch = [float(np.sqrt(w.low * w.high)) for w in WORKLOADS if w.kind == "batch"]
    return {
        "workload_rows": [(w.name, w.kind, w.low, w.high) for w in WORKLOADS],
        "datacenter_rows": dc_rows,
        "interactive_median": float(np.median(interactive)),
        "batch_median": float(np.median(batch)),
    }


RUNNERS: dict[str, Callable[[Trial], Any]] = {
    "rejection": run_rejection_trial,
    "reserved": run_reserved_trial,
    "inference": run_inference_trial,
    "runtime": run_runtime_trial,
    "enforce": run_enforce_trial,
    "hose_fail": run_hose_failure_trial,
    "temporal": run_temporal_trial,
    "failure": run_failure_trial,
    "service": run_service_trial,
    "survey": run_survey_trial,
}

_ALL_AXES = frozenset({"seeds", "loads", "bmaxes", "placers", "pods", "arrivals"})

# Which generic grid axes each kind actually consumes.  The CLI uses
# this to reject overrides that would be silent no-ops (e.g.
# ``--arrivals`` on table1, whose runner streams until the first
# rejection regardless).
KIND_AXES: dict[str, frozenset[str]] = {
    "rejection": _ALL_AXES,
    "reserved": frozenset({"seeds", "bmaxes", "pods"}),
    "inference": frozenset({"seeds"}),
    "runtime": frozenset({"placers", "pods"}),
    # Enforcement kinds compare abstraction modes: the variant axis IS
    # the tag/hose mode, so --placers is meaningful.
    "enforce": frozenset({"placers"}),
    "hose_fail": frozenset({"placers"}),
    # The variant axis is the accounting mode (window vs peak); the
    # x-axis is the window count.
    "temporal": frozenset({"placers", "pods"}),
    # The x-axis is the failed-server fraction; every generic axis
    # (load, pool scaling, placer, topology size, seeds) is meaningful.
    "failure": _ALL_AXES,
    # The streaming loop consumes every generic axis; arrival shape and
    # cohort size ride on params (--load-profile and scenario overrides).
    "service": _ALL_AXES,
    "survey": frozenset(),
}


def kind_axes(kind: str) -> frozenset[str]:
    """Grid axes consumed by ``kind``; custom kinds accept everything."""
    return KIND_AXES.get(kind, _ALL_AXES)


# Kinds whose payload is a wall-clock measurement: dispatching their
# trials across worker processes would let CPU contention inflate the
# measured seconds, so the engine pins them to serial execution.
SERIAL_ONLY_KINDS: frozenset[str] = frozenset({"runtime"})


def register_runner(kind: str, runner: Callable[[Trial], Any]) -> None:
    """Add (or replace) the execution function for a trial kind.

    For ``n_jobs > 1`` the function must be importable by spawn workers,
    i.e. defined at module level, not a lambda or closure.
    """
    if not kind:
        raise EngineError("runner kind must be non-empty")
    RUNNERS[kind] = runner


def execute_trial(trial: Trial) -> TrialResult:
    """Run one trial through its kind's runner, timing the wall clock.

    The timing source must stay ``time.perf_counter()``: elapsed values
    are persisted by the results store and compared across runs, so they
    have to be monotonic and immune to wall-clock adjustments (NTP
    slews, DST) that would corrupt a ``time.time()`` delta.

    With instrumentation on (:func:`repro.obs.enable` in this process,
    or the ``REPRO_OBS`` flag inherited by a spawn worker), the whole
    trial runs inside a :class:`~repro.obs.trace.TraceRecorder` and the
    result carries its export on ``TrialResult.telemetry`` — a plain
    dict, so it crosses the worker boundary with the rest of the result.
    The payload itself is bit-identical either way: instrumentation only
    reads simulation state.
    """
    runner = RUNNERS.get(trial.kind)
    if runner is None:
        raise EngineError(
            f"no runner for kind {trial.kind!r}; options: {sorted(RUNNERS)}"
        )
    if not obs.enabled():
        started = time.perf_counter()
        payload = runner(trial)
        return TrialResult(trial, payload, time.perf_counter() - started)
    label = f"{trial.scenario}/{trial.variant.name}#{trial.index}"
    with TraceRecorder(label) as recorder:
        started = time.perf_counter()
        with obs.span(f"trial.{trial.kind}", scenario=trial.scenario,
                      variant=trial.variant.name, seed=trial.seed):
            payload = runner(trial)
        elapsed = time.perf_counter() - started
    return TrialResult(trial, payload, elapsed, telemetry=recorder.export())
