"""Shared per-process construction caches for trial execution.

Every trial needs a tenant pool, a scaled copy of it, and a topology
built from its spec.  Those are pure functions of hashable inputs, so
repeated trials in one process (the common case for a sweep) reuse them
instead of re-parsing workload data and rebuilding trees.  Mutable state
(the ledger, placer, manager) is always constructed fresh per trial —
only immutable objects are cached.

Worker processes build their own caches on first use; nothing here is
shared across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Sequence

from repro.core.tag import Tag
from repro.engine.scenario import Trial
from repro.errors import EngineError
from repro.obs import core as _obs
from repro.simulation.cluster import ClusterManager
from repro.simulation.runner import make_placer
from repro.topology.builder import (
    DatacenterSpec,
    heterogeneous_from_spec,
    three_level_tree,
)
from repro.topology.ledger import Ledger
from repro.topology.tree import Topology
from repro.workloads.bing import bing_pool
from repro.workloads.hpcloud import hpcloud_pool
from repro.workloads.scaling import scale_pool
from repro.workloads.synthetic import synthetic_pool

__all__ = [
    "POOL_NAMES",
    "TrialContext",
    "build_context",
    "get_hetero_topology",
    "get_pool",
    "get_scaled_pool",
    "get_topology",
]

_POOL_FACTORIES: dict[str, Callable[[], Sequence[Tag]]] = {
    "bing": bing_pool,
    "hpcloud": hpcloud_pool,
    "synthetic": synthetic_pool,
}

POOL_NAMES = tuple(sorted(_POOL_FACTORIES))


@lru_cache(maxsize=None)
def get_pool(name: str) -> tuple[Tag, ...]:
    """The named tenant pool, parsed once per process."""
    factory = _POOL_FACTORIES.get(name)
    if factory is None:
        raise EngineError(f"unknown pool {name!r}; options: {POOL_NAMES}")
    # Bumped inside the cached body: only cache *misses* count, so the
    # counter reads as "workload parses per process".
    c = _obs.counters
    if c is not None:
        c.bump("context.pool_builds")
    return tuple(factory())


@lru_cache(maxsize=64)
def get_scaled_pool(name: str, bmax: float) -> tuple[Tag, ...]:
    """The named pool scaled to ``bmax``, computed once per (pool, bmax)."""
    c = _obs.counters
    if c is not None:
        c.bump("context.scaled_pool_builds")
    return tuple(scale_pool(get_pool(name), bmax))


@lru_cache(maxsize=32)
def get_topology(spec: DatacenterSpec, unlimited: bool = False) -> Topology:
    """A built topology per spec.  Safe to share: topologies are immutable
    (all reservation state lives in per-trial :class:`Ledger` instances).

    The flat array view (precomputed ancestor/path tuples, server spans,
    subtree slot totals) is materialized here, once per process, so every
    trial's ledger and placers start from the shared arrays instead of
    racing to build them on first use."""
    c = _obs.counters
    if c is not None:
        c.bump("context.topology_builds")
    topology = three_level_tree(spec, unlimited=unlimited)
    topology.flat  # noqa: B018 - force one-time materialization
    return topology


@lru_cache(maxsize=32)
def get_hetero_topology(spec: DatacenterSpec) -> Topology:
    """The deterministic heterogeneous variant of a spec (failure kind).

    Immutable like :func:`get_topology` — failure state lives in
    per-trial ledgers' :class:`~repro.topology.failures.FailureMask`, so
    the shared topology is never mutated."""
    c = _obs.counters
    if c is not None:
        c.bump("context.topology_builds")
    topology = heterogeneous_from_spec(spec)
    topology.flat  # noqa: B018 - force one-time materialization
    return topology


@dataclass
class TrialContext:
    """Everything a rejection-style trial needs, ready to run."""

    pool: list[Tag]
    topology: Topology
    ledger: Ledger
    placer: object
    manager: ClusterManager


def build_context(trial: Trial, *, collect_wcs: bool = True) -> TrialContext:
    """Construct the mutable simulation state for one trial.

    The scaled pool and topology come from the process-wide caches; the
    ledger, placer and cluster manager are fresh so trials never observe
    each other's reservations.
    """
    pool = list(get_scaled_pool(trial.pool, trial.bmax))
    topology = get_topology(trial.topology.spec)
    ledger = Ledger(topology)
    placer = make_placer(trial.variant.placer, ledger, trial.variant.ha)
    manager = ClusterManager(
        ledger, placer, laa_level=trial.laa_level, collect_wcs=collect_wcs
    )
    return TrialContext(pool, topology, ledger, placer, manager)
