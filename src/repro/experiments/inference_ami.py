"""§3 TAG inference: adjusted mutual information vs ground truth.

"We applied this approach to the bing.com dataset ... we obtained on
average 0.54 over 80 applications using Louvain clustering, indicating
substantial commonality between the ground truth clustering and the
inferred clusters, but also the need for further improvement."

We run the same pipeline (feature vectors -> angular-similarity
projection graph -> Louvain -> AMI) over synthetic traces generated from
the bing-like pool.  Synthetic traces are cleaner than production ones,
so the expected score is similar-or-higher than 0.54; the experiment
reports the distribution.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.experiments._table import Table
from repro.inference.ami import ami
from repro.inference.builder import infer_components
from repro.inference.traffic import synthesize_trace
from repro.workloads.bing import bing_pool

__all__ = ["run", "main"]


@dataclass(frozen=True)
class InferenceResult:
    scores: list[float]
    mean: float
    applications: int


def run(
    *,
    max_vms: int = 60,
    max_applications: int = 20,
    noise_fraction: float = 0.05,
    seed: int = 0,
) -> InferenceResult:
    """Infer components for every pool application small enough to afford.

    The projection graph is O(VMs^2); ``max_vms`` bounds per-application
    cost (the paper's 80 apps include 700-VM giants that need the same
    pipeline but minutes of compute).
    """
    pool = [
        tag
        for tag in bing_pool()
        if tag.num_tiers >= 2 and tag.size <= max_vms
    ][:max_applications]
    scores = []
    for index, tag in enumerate(pool):
        trace = synthesize_trace(
            tag, seed=seed + index, noise_fraction=noise_fraction
        )
        labels = infer_components(trace, seed=seed + index)
        scores.append(ami(trace.labels, labels))
    return InferenceResult(
        scores=scores,
        mean=float(np.mean(scores)) if scores else 0.0,
        applications=len(scores),
    )


def to_table(result: InferenceResult) -> Table:
    table = Table(
        "§3 — TAG inference quality (adjusted mutual information)",
        ("statistic", "value"),
    )
    table.add("applications", result.applications)
    table.add("mean AMI", f"{result.mean:.2f}")
    table.add("min AMI", f"{min(result.scores):.2f}" if result.scores else "-")
    table.add("max AMI", f"{max(result.scores):.2f}" if result.scores else "-")
    table.add("paper reference", "0.54 over 80 bing.com applications")
    return table


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-vms", type=int, default=60)
    parser.add_argument("--max-applications", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run(
        max_vms=args.max_vms,
        max_applications=args.max_applications,
        seed=args.seed,
    )
    to_table(result).show()


if __name__ == "__main__":
    main()
