"""§3 TAG inference: adjusted mutual information vs ground truth.

"We applied this approach to the bing.com dataset ... we obtained on
average 0.54 over 80 applications using Louvain clustering, indicating
substantial commonality between the ground truth clustering and the
inferred clusters, but also the need for further improvement."

We run the same pipeline (feature vectors -> angular-similarity
projection graph -> Louvain -> AMI) over synthetic traces generated from
the bing-like pool.  Synthetic traces are cleaner than production ones,
so the expected score is similar-or-higher than 0.54; the experiment
reports the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import CliOption, scenario_main
from repro.experiments._table import Table

__all__ = ["run", "main", "SCENARIO"]

SCENARIO = Scenario(
    name="inference",
    title="§3 — TAG inference quality (AMI vs ground truth)",
    kind="inference",
    pool="bing",
    variants=(Variant("louvain"),),
    params=(("max_applications", 20), ("max_vms", 60), ("noise_fraction", 0.05)),
)


@dataclass(frozen=True)
class InferenceResult:
    scores: list[float]
    mean: float
    applications: int


def _to_result(trial_result) -> InferenceResult:
    payload = trial_result.payload
    return InferenceResult(
        scores=payload["scores"],
        mean=payload["mean"],
        applications=payload["applications"],
    )


def run(
    *,
    max_vms: int = 60,
    max_applications: int = 20,
    noise_fraction: float = 0.05,
    seed: int = 0,
    n_jobs: int = 1,
) -> InferenceResult:
    """Infer components for every pool application small enough to afford.

    The projection graph is O(VMs^2); ``max_vms`` bounds per-application
    cost (the paper's 80 apps include 700-VM giants that need the same
    pipeline but minutes of compute).
    """
    scenario = SCENARIO.override(
        seeds=(seed,),
        params=(
            ("max_applications", max_applications),
            ("max_vms", max_vms),
            ("noise_fraction", noise_fraction),
        ),
    )
    (trial_result,) = Engine(n_jobs=n_jobs).run(scenario).results
    return _to_result(trial_result)


def to_table(result: InferenceResult) -> Table:
    table = Table(
        "§3 — TAG inference quality (adjusted mutual information)",
        ("statistic", "value"),
    )
    table.add("applications", result.applications)
    table.add("mean AMI", f"{result.mean:.2f}")
    table.add("min AMI", f"{min(result.scores):.2f}" if result.scores else "-")
    table.add("max AMI", f"{max(result.scores):.2f}" if result.scores else "-")
    table.add("paper reference", "0.54 over 80 bing.com applications")
    return table


def present(result: ScenarioResult) -> None:
    # One table per seed (the CLI allows --seeds sweeps).
    for trial_result in result:
        to_table(_to_result(trial_result)).show()


def _set_param(key: str):
    def apply(scenario: Scenario, value):
        params = tuple(
            (name, value if name == key else old) for name, old in scenario.params
        )
        return scenario.override(params=params)

    return apply


main = scenario_main(
    SCENARIO,
    __doc__,
    present,
    options=(
        CliOption("--max-vms", int, 60, "per-application VM bound", _set_param("max_vms")),
        CliOption(
            "--max-applications",
            int,
            20,
            "number of pool applications to infer",
            _set_param("max_applications"),
        ),
    ),
)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
