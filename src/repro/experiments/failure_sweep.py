"""Failure sweep: guarantee survival and re-placement churn under faults.

Extends the Fig. 4 hose-failure motivation into a full sweep axis: a
heterogeneous-capacity datacenter (mixed rack sizes, slot counts and NIC
speeds) is loaded through the standard §5.1 arrival/departure loop, then
a seeded set of server, ToR-switch and ToR-uplink failures is injected
through the ledger's FailureMask.  Tenants with a VM in a failed domain
lose their guarantee; the sweep measures how many survive, how many can
be re-placed on the degraded fabric, the VM churn that re-placement
costs, and the wall-clock time to recover.

The x-axis is the failed-server fraction (``--fractions``); the variant
axis compares how each placement algorithm's colocation choices shape
the blast radius.
"""

from __future__ import annotations

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import CliOption, scenario_main
from repro.experiments._table import Table

__all__ = ["run", "main", "SCENARIO", "DEFAULT_FRACTIONS"]

DEFAULT_FRACTIONS = (0.02, 0.05, 0.1, 0.2)

SCENARIO = Scenario(
    name="failure",
    title="Failure sweep — guarantee survival & re-placement churn",
    kind="failure",
    variants=(Variant("cm"), Variant("ovoc"), Variant("secondnet")),
    loads=(0.7,),
    bmaxes=(800.0,),
    xs=DEFAULT_FRACTIONS,
    arrivals=400,
    # One ToR switch and one ToR uplink die alongside the server
    # fraction; hetero=1 places on the mixed-rack variant of the spec.
    params=(("switches", 1), ("links", 1), ("hetero", 1)),
)


def run(
    *,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    load: float = 0.7,
    arrivals: int = 400,
    pods: int | None = None,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc", "secondnet"),
    hetero: bool = True,
    n_jobs: int = 1,
) -> ScenarioResult:
    scenario = SCENARIO.override(
        xs=fractions,
        loads=(load,),
        arrivals=arrivals,
        pods=pods,
        seeds=(seed,),
        variants=tuple(Variant(a) for a in algorithms),
        params=(("switches", 1), ("links", 1), ("hetero", int(hetero))),
    )
    return Engine(n_jobs=n_jobs).run(scenario)


def to_table(result: ScenarioResult) -> Table:
    table = Table(
        "Failure sweep — survival and re-placement after injected faults",
        (
            "failed",
            "algorithm",
            "placed",
            "victims",
            "survival",
            "replaced",
            "lost",
            "churn VMs",
            "recover",
        ),
    )
    for r in result:
        payload = r.payload
        table.add(
            f"{float(r.trial.x):.0%}",
            r.trial.variant.name,
            payload["placed"],
            payload["victims"],
            f"{payload['survival_rate']:.0%}",
            payload["replaced"],
            payload["lost"],
            payload["churn_vms"],
            f"{payload['recover_seconds'] * 1e3:.1f} ms",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(result).show()
    worst: dict[str, float] = {}
    for r in result:
        name = r.trial.variant.name
        worst[name] = min(worst.get(name, 1.0), r.payload["survival_rate"])
    for name, rate in sorted(worst.items()):
        print(f"{name}: worst-case guarantee survival {rate:.0%}")


main = scenario_main(
    SCENARIO,
    __doc__,
    present,
    options=(
        CliOption(
            "--fractions",
            str,
            ",".join(str(x) for x in DEFAULT_FRACTIONS),
            "comma-separated failed-server fractions on the x-axis",
            lambda scenario, value: scenario.override(
                xs=tuple(
                    float(part) for part in value.split(",") if part.strip()
                )
            ),
        ),
    ),
)

registry.register(SCENARIO, present, aliases=("failures",), cli=main)

if __name__ == "__main__":
    main()
