"""§6 extension: window-aware vs peak-everywhere admission capacity.

The paper's §6 notes CloudMirror can adopt workload profiling [18] to be
"even more efficient".  This driver quantifies the claim on the engine:
a deterministic mix of day-peaking interactive tenants and night-peaking
batch tenants is admitted into two identical oversubscribed datacenters
— one accounting reservations per time window (W bandwidth planes), one
flattening every tenant to its peak — and reports how many fit plus the
per-window server-level utilization profile.
"""

from __future__ import annotations

from repro.engine import Engine, Scenario, ScenarioResult, TopologyCase, Variant, registry
from repro.experiments._cli import CliOption, scenario_main
from repro.experiments._table import Table
from repro.topology.builder import DatacenterSpec

__all__ = ["run", "main", "SCENARIO", "DEFAULT_WINDOWS"]

DEFAULT_WINDOWS = (4, 8, 12)

# Tight per-server slots force tenants to span servers, so server
# uplinks — not slots — are the binding resource, which is where
# time-multiplexing the reservations pays off.
_SPEC = DatacenterSpec(
    servers_per_rack=8,
    racks_per_pod=4,
    pods=2,
    slots_per_server=4,
    server_uplink=2000.0,
    tor_oversub=4.0,
    agg_oversub=4.0,
)

SCENARIO = Scenario(
    name="temporal",
    title="§6 — window-aware vs peak-everywhere admission",
    kind="temporal",
    pool="",
    variants=(Variant("window"), Variant("peak")),
    topologies=(TopologyCase("2x4x8", _SPEC),),
    xs=DEFAULT_WINDOWS,
    params=(("tenants", 48), ("trough", 0.2)),
)


def run(
    *,
    windows: tuple[int, ...] = DEFAULT_WINDOWS,
    tenants: int = 48,
    pods: int | None = None,
    n_jobs: int = 1,
) -> ScenarioResult:
    scenario = SCENARIO.override(
        xs=windows, pods=pods, params=(("tenants", tenants), ("trough", 0.2))
    )
    return Engine(n_jobs=n_jobs).run(scenario)


def to_table(result: ScenarioResult) -> Table:
    table = Table(
        "§6 — tenants admitted before bandwidth runs out",
        ("windows", "accounting", "admitted", "of", "peak window util"),
    )
    for r in result:
        payload = r.payload
        label = (
            "window-aware" if r.trial.variant.name == "window" else "peak-everywhere"
        )
        peak_util = max(payload["utilization"], default=0.0)
        table.add(
            payload["windows"],
            label,
            payload["admitted"],
            payload["tenants"],
            f"{peak_util:.0%}",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(result).show()
    by_windows: dict[int, dict[str, int]] = {}
    for r in result:
        by_windows.setdefault(r.payload["windows"], {})[
            r.trial.variant.name
        ] = r.payload["admitted"]
    for windows, admitted in sorted(by_windows.items()):
        if "window" in admitted and "peak" in admitted and admitted["peak"]:
            ratio = admitted["window"] / admitted["peak"]
            print(
                f"W={windows}: window-aware admits {ratio:.2f}x the "
                f"peak-everywhere tenant count"
            )


main = scenario_main(
    SCENARIO,
    __doc__,
    present,
    options=(
        CliOption(
            "--windows",
            str,
            ",".join(str(w) for w in DEFAULT_WINDOWS),
            "comma-separated window counts on the x-axis",
            lambda scenario, value: scenario.override(
                xs=tuple(int(part) for part in value.split(",") if part.strip())
            ),
        ),
    ),
)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
