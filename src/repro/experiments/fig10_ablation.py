"""Fig. 10: micro-benchmark of the CM subroutines (the paper's ablation).

Deactivates Coloc and Balance one at a time: "Colocation is clearly the
main factor in accepting more resource requests but Balance also
contributes ... Even without Coloc, the Balance-only approach performed
close to OVOC."
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics
from repro.simulation.runner import simulate_rejections
from repro.topology.builder import DatacenterSpec
from repro.workloads.bing import bing_pool

__all__ = ["run", "main", "VARIANTS"]

VARIANTS = ("cm", "cm-coloc-only", "cm-balance-only", "ovoc")
_LABELS = {
    "cm": "Coloc+Balance",
    "cm-coloc-only": "Coloc",
    "cm-balance-only": "Balance",
    "ovoc": "OVOC",
}


@dataclass(frozen=True)
class AblationPoint:
    variant: str
    label: str
    metrics: RunMetrics


def run(
    *,
    load: float = 0.8,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
) -> list[AblationPoint]:
    pool = bing_pool()
    spec = DatacenterSpec(pods=pods)
    points = []
    for variant in VARIANTS:
        metrics = simulate_rejections(
            pool,
            variant,
            load=load,
            bmax=bmax,
            spec=spec,
            arrivals=arrivals,
            seed=seed,
        )
        points.append(AblationPoint(variant, _LABELS[variant], metrics))
    return points


def to_table(points: list[AblationPoint]) -> Table:
    table = Table(
        "Fig. 10 — CM subroutine ablation (rejected bandwidth %)",
        ("variant", "BW rejected", "VM rejected"),
    )
    for p in points:
        table.add(
            p.label,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.vm_rejection_rate:.1%}",
        )
    return table


def to_chart(points: list[AblationPoint]) -> str:
    from repro.experiments._chart import bar_chart

    return bar_chart(
        {p.label: p.metrics.bw_rejection_rate * 100 for p in points},
        title="Fig. 10 — rejected bandwidth (%)",
        unit="%",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--arrivals", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    points = run(pods=args.pods, arrivals=args.arrivals, seed=args.seed)
    to_table(points).show()
    print(to_chart(points))


if __name__ == "__main__":
    main()
