"""Fig. 10: micro-benchmark of the CM subroutines (the paper's ablation).

Deactivates Coloc and Balance one at a time: "Colocation is clearly the
main factor in accepting more resource requests but Balance also
contributes ... Even without Coloc, the Balance-only approach performed
close to OVOC."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics

__all__ = ["run", "main", "SCENARIO", "VARIANTS"]

VARIANTS = ("cm", "cm-coloc-only", "cm-balance-only", "ovoc")
_LABELS = {
    "cm": "Coloc+Balance",
    "cm-coloc-only": "Coloc",
    "cm-balance-only": "Balance",
    "ovoc": "OVOC",
}

SCENARIO = Scenario(
    name="fig10",
    title="Fig. 10 — CM subroutine ablation",
    kind="rejection",
    variants=tuple(Variant(v) for v in VARIANTS),
    loads=(0.8,),
    bmaxes=(800.0,),
)


@dataclass(frozen=True)
class AblationPoint:
    variant: str
    label: str
    metrics: RunMetrics


def _points(result: ScenarioResult) -> list[AblationPoint]:
    return [
        AblationPoint(
            r.trial.variant.name,
            _LABELS.get(r.trial.variant.name, r.trial.variant.name),
            r.payload,
        )
        for r in result
    ]


def run(
    *,
    load: float = 0.8,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    n_jobs: int = 1,
) -> list[AblationPoint]:
    scenario = SCENARIO.override(
        loads=(load,),
        bmaxes=(bmax,),
        pods=pods,
        arrivals=arrivals,
        seeds=(seed,),
    )
    return _points(Engine(n_jobs=n_jobs).run(scenario))


def to_table(points: list[AblationPoint]) -> Table:
    table = Table(
        "Fig. 10 — CM subroutine ablation (rejected bandwidth %)",
        ("variant", "BW rejected", "VM rejected"),
    )
    for p in points:
        table.add(
            p.label,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.vm_rejection_rate:.1%}",
        )
    return table


def to_chart(points: list[AblationPoint]) -> str:
    from repro.experiments._chart import bar_chart

    return bar_chart(
        {p.label: p.metrics.bw_rejection_rate * 100 for p in points},
        title="Fig. 10 — rejected bandwidth (%)",
        unit="%",
    )


def present(result: ScenarioResult) -> None:
    points = _points(result)
    to_table(points).show()
    print(to_chart(points))


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
