"""Fig. 11: impact of guaranteeing worst-case survivability (WCS).

Sweeps the required server-level WCS over {0, 25, 50, 75}% for CM+HA and
OVOC+HA.  Claims: (a) both algorithms achieve at least the required WCS,
with CM+HA's *mean* WCS higher; (b) rejected bandwidth grows only
slightly with the requirement (bandwidth is not the bottleneck at the
server level).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.placement.ha import HaPolicy
from repro.simulation.metrics import RunMetrics
from repro.simulation.runner import simulate_rejections
from repro.topology.builder import DatacenterSpec
from repro.workloads.bing import bing_pool

__all__ = ["run", "main", "DEFAULT_RWCS"]

DEFAULT_RWCS = (0.0, 0.25, 0.5, 0.75)


@dataclass(frozen=True)
class WcsPoint:
    required_wcs: float
    algorithm: str
    metrics: RunMetrics


def run(
    *,
    required_values: tuple[float, ...] = DEFAULT_RWCS,
    load: float = 0.7,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    laa_level: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
) -> list[WcsPoint]:
    pool = bing_pool()
    spec = DatacenterSpec(pods=pods)
    points = []
    for required in required_values:
        ha = HaPolicy(required_wcs=required, laa_level=laa_level)
        for algorithm in algorithms:
            metrics = simulate_rejections(
                pool,
                algorithm,
                load=load,
                bmax=bmax,
                spec=spec,
                arrivals=arrivals,
                seed=seed,
                ha=ha,
                laa_level=laa_level,
            )
            points.append(WcsPoint(required, algorithm, metrics))
    return points


def to_table(points: list[WcsPoint]) -> Table:
    table = Table(
        "Fig. 11 — guaranteeing WCS at the server level",
        (
            "required WCS",
            "algorithm",
            "mean WCS",
            "min WCS",
            "BW rejected",
            "slot util",
        ),
    )
    for p in points:
        table.add(
            f"{p.required_wcs:.0%}",
            "CM+HA" if p.algorithm == "cm" else "OVOC+HA",
            f"{p.metrics.wcs.mean:.1%}",
            f"{p.metrics.wcs.minimum:.1%}",
            f"{p.metrics.bw_rejection_rate:.1%}",
            # §4.5: "guaranteeing WCS may decrease datacenter utilization".
            f"{p.metrics.mean_slot_utilization:.1%}",
        )
    return table


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--arrivals", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    to_table(run(pods=args.pods, arrivals=args.arrivals, seed=args.seed)).show()


if __name__ == "__main__":
    main()
