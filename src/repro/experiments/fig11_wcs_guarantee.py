"""Fig. 11: impact of guaranteeing worst-case survivability (WCS).

Sweeps the required server-level WCS over {0, 25, 50, 75}% for CM+HA and
OVOC+HA.  Claims: (a) both algorithms achieve at least the required WCS,
with CM+HA's *mean* WCS higher; (b) rejected bandwidth grows only
slightly with the requirement (bandwidth is not the bottleneck at the
server level).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table
from repro.placement.ha import HaPolicy
from repro.simulation.metrics import RunMetrics

__all__ = ["run", "main", "SCENARIO", "DEFAULT_RWCS"]

DEFAULT_RWCS = (0.0, 0.25, 0.5, 0.75)


def _variants(
    required_values: tuple[float, ...],
    algorithms: tuple[str, ...],
    laa_level: int,
) -> tuple[Variant, ...]:
    return tuple(
        Variant(
            f"{algorithm}@{required:.0%}",
            algorithm,
            HaPolicy(required_wcs=required, laa_level=laa_level),
        )
        for required in required_values
        for algorithm in algorithms
    )


SCENARIO = Scenario(
    name="fig11",
    title="Fig. 11 — guaranteeing WCS at the server level",
    kind="rejection",
    variants=_variants(DEFAULT_RWCS, ("cm", "ovoc"), laa_level=0),
    loads=(0.7,),
    bmaxes=(800.0,),
)


@dataclass(frozen=True)
class WcsPoint:
    required_wcs: float
    algorithm: str
    metrics: RunMetrics


def _points(result: ScenarioResult) -> list[WcsPoint]:
    return [
        WcsPoint(
            r.trial.variant.ha.required_wcs if r.trial.variant.ha else 0.0,
            r.trial.variant.placer,
            r.payload,
        )
        for r in result
    ]


def run(
    *,
    required_values: tuple[float, ...] = DEFAULT_RWCS,
    load: float = 0.7,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    laa_level: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
    n_jobs: int = 1,
) -> list[WcsPoint]:
    scenario = SCENARIO.override(
        variants=_variants(tuple(required_values), tuple(algorithms), laa_level),
        loads=(load,),
        bmaxes=(bmax,),
        pods=pods,
        arrivals=arrivals,
        seeds=(seed,),
        laa_level=laa_level,
    )
    return _points(Engine(n_jobs=n_jobs).run(scenario))


def to_table(points: list[WcsPoint]) -> Table:
    table = Table(
        "Fig. 11 — guaranteeing WCS at the server level",
        (
            "required WCS",
            "algorithm",
            "mean WCS",
            "min WCS",
            "BW rejected",
            "slot util",
        ),
    )
    for p in points:
        table.add(
            f"{p.required_wcs:.0%}",
            "CM+HA" if p.algorithm == "cm" else "OVOC+HA",
            f"{p.metrics.wcs.mean:.1%}",
            f"{p.metrics.wcs.minimum:.1%}",
            f"{p.metrics.bw_rejection_rate:.1%}",
            # §4.5: "guaranteeing WCS may decrease datacenter utilization".
            f"{p.metrics.mean_slot_utilization:.1%}",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(_points(result)).show()


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
