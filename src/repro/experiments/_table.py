"""Tiny text-table formatter shared by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table", "format_mean_ci"]


def format_mean_ci(
    mean: float, low: float, high: float, fmt: str = "{:.3g}"
) -> str:
    """``mean [low, high]`` cell text for seed-replicated statistics.

    A degenerate interval (single replica: low == mean == high) renders
    as the bare mean so single-seed tables stay uncluttered.
    """
    if low == mean == high:
        return fmt.format(mean)
    return f"{fmt.format(mean)} [{fmt.format(low)}, {fmt.format(high)}]"


@dataclass
class Table:
    """Rows of heterogeneous cells rendered as an aligned text table."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def to_text(self) -> str:
        rendered = [[self._format(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.to_text())
        print()
