"""One driver module per paper table/figure (see DESIGN.md experiment index)."""

from repro.experiments import (
    fig01_survey,
    fig04_hose_failure,
    fig07_bmax_sweep,
    fig08_load_sweep,
    fig09_oversub_sweep,
    fig10_ablation,
    fig11_wcs_guarantee,
    fig12_opportunistic_ha,
    fig13_enforcement,
    inference_ami,
    runtime_scaling,
    table1_reserved_bw,
)

EXPERIMENTS = {
    "fig1": fig01_survey,
    "fig4": fig04_hose_failure,
    "table1": table1_reserved_bw,
    "fig7": fig07_bmax_sweep,
    "fig8": fig08_load_sweep,
    "fig9": fig09_oversub_sweep,
    "fig10": fig10_ablation,
    "fig11": fig11_wcs_guarantee,
    "fig12": fig12_opportunistic_ha,
    "fig13": fig13_enforcement,
    "runtime": runtime_scaling,
    "inference": inference_ami,
}

__all__ = ["EXPERIMENTS"]
