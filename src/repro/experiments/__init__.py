"""One driver module per paper table/figure, all running on the engine.

Importing this package registers every experiment's declarative
:class:`~repro.engine.scenario.Scenario` with
:mod:`repro.engine.registry` (that is what ``registry.load_all`` relies
on).  ``EXPERIMENTS`` is the legacy name -> module map kept for callers
that import driver modules directly.
"""

from repro.experiments import (
    fig01_survey,
    fig04_hose_failure,
    fig07_bmax_sweep,
    fig08_load_sweep,
    fig09_oversub_sweep,
    fig10_ablation,
    fig11_wcs_guarantee,
    fig12_opportunistic_ha,
    fig13_enforcement,
    failure_sweep,
    inference_ami,
    runtime_scaling,
    service_loop,
    table1_reserved_bw,
    temporal_savings,
)

EXPERIMENTS = {
    "fig1": fig01_survey,
    "fig4": fig04_hose_failure,
    "table1": table1_reserved_bw,
    "fig7": fig07_bmax_sweep,
    "fig8": fig08_load_sweep,
    "fig9": fig09_oversub_sweep,
    "fig10": fig10_ablation,
    "fig11": fig11_wcs_guarantee,
    "fig12": fig12_opportunistic_ha,
    "fig13": fig13_enforcement,
    "runtime": runtime_scaling,
    "inference": inference_ami,
    "temporal": temporal_savings,
    "service": service_loop,
    "failure": failure_sweep,
}

__all__ = ["EXPERIMENTS"]
