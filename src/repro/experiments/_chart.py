"""Minimal ASCII chart rendering for the figure experiments.

The paper's evaluation artifacts are figures; these helpers render the
regenerated series as terminal plots so `repro-experiment figN` output
visually mirrors the paper (shape, crossings, saturation), without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "*o+x#@"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 60,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
    bands: Mapping[str, Sequence[tuple[float, float, float]]] | None = None,
) -> str:
    """Render named ``(x, y)`` series on one shared-axis scatter chart.

    ``bands`` optionally adds per-series ``(x, y_low, y_high)`` intervals
    (confidence bands from seed-replicated runs), drawn as ``:`` columns
    underneath the series markers and included in the y-axis range.
    """
    bands = bands or {}
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points] + [x for pts in bands.values() for x, _, _ in pts]
    ys = [p[1] for p in points] + [
        y for pts in bands.values() for _, low, high in pts for y in (low, high)
    ]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        return height - 1 - row, col

    grid = [[" "] * width for _ in range(height)]
    # Bands first so series markers draw over them.
    for pts in bands.values():
        for x, low, high in pts:
            top, col = cell(x, high)
            bottom, _ = cell(x, low)
            for row in range(top, bottom + 1):
                grid[row][col] = ":"
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            row, col = cell(x, y)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    top = f"{y_high:.4g}"
    bottom = f"{y_low:.4g}"
    gutter = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top.rjust(gutter)
        elif i == height - 1:
            prefix = bottom.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * gutter} +{'-' * width}"
    lines.append(axis)
    left = f"{x_low:.4g}"
    right = f"{x_high:.4g}"
    pad = width - len(left) - len(right)
    lines.append(f"{' ' * (gutter + 2)}{left}{' ' * max(pad, 1)}{right}")
    if x_label:
        lines.append(f"{' ' * (gutter + 2)}{x_label}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * (gutter + 2)}{legend}")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars."""
    if not values:
        return f"{title}\n(no data)"
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)
