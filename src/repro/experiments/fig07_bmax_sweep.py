"""Fig. 7: rejection rates vs B_max at two load levels, CM vs OVOC.

"(a) Load = 50%" and "(b) Load = 90%": sweeping the per-VM bandwidth
scale B_max from 400 to 1200 Mbps, plotting rejected-bandwidth and
rejected-VM fractions.  The paper's headline: "for some B_max, CM can
deploy almost all requests while OVOC rejects up to 40% of bandwidth
requests."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics

__all__ = ["run", "main", "SCENARIO", "DEFAULT_BMAX_VALUES"]

DEFAULT_BMAX_VALUES = (400.0, 600.0, 800.0, 1000.0, 1200.0)

SCENARIO = Scenario(
    name="fig07",
    title="Fig. 7 — rejection rates vs B_max at 50% and 90% load",
    kind="rejection",
    variants=(Variant("cm"), Variant("ovoc")),
    loads=(0.5, 0.9),
    bmaxes=DEFAULT_BMAX_VALUES,
)


@dataclass(frozen=True)
class SweepPoint:
    bmax: float
    load: float
    algorithm: str
    metrics: RunMetrics


def _points(result: ScenarioResult) -> list[SweepPoint]:
    return [
        SweepPoint(r.trial.bmax, r.trial.load, r.trial.variant.name, r.payload)
        for r in result
    ]


def run(
    *,
    loads: tuple[float, ...] = (0.5, 0.9),
    bmax_values: tuple[float, ...] = DEFAULT_BMAX_VALUES,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
    n_jobs: int = 1,
) -> list[SweepPoint]:
    scenario = SCENARIO.override(
        loads=loads,
        bmaxes=bmax_values,
        pods=pods,
        arrivals=arrivals,
        seeds=(seed,),
        variants=tuple(Variant(a) for a in algorithms),
    )
    return _points(Engine(n_jobs=n_jobs).run(scenario))


def to_table(points: list[SweepPoint]) -> Table:
    table = Table(
        "Fig. 7 — rejection rates (%) vs B_max",
        ("load", "bmax", "algorithm", "BW rejected", "VM rejected", "tenants rejected"),
    )
    for p in points:
        table.add(
            f"{p.load:.0%}",
            f"{p.bmax:.0f}",
            p.algorithm,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.vm_rejection_rate:.1%}",
            f"{p.metrics.tenant_rejection_rate:.1%}",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(_points(result)).show()
    # Seed-replicated grids additionally get mean ± bootstrap CI rows.
    from repro.results.present import seed_replicated_summary

    summary = seed_replicated_summary(
        result, metric="bw_rejection_rate", axis="bmax"
    )
    if summary:
        print(summary)


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, aliases=("fig7",), cli=main)

if __name__ == "__main__":
    main()
