"""Fig. 7: rejection rates vs B_max at two load levels, CM vs OVOC.

"(a) Load = 50%" and "(b) Load = 90%": sweeping the per-VM bandwidth
scale B_max from 400 to 1200 Mbps, plotting rejected-bandwidth and
rejected-VM fractions.  The paper's headline: "for some B_max, CM can
deploy almost all requests while OVOC rejects up to 40% of bandwidth
requests."
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics
from repro.simulation.runner import simulate_rejections
from repro.topology.builder import DatacenterSpec
from repro.workloads.bing import bing_pool

__all__ = ["run", "main", "DEFAULT_BMAX_VALUES"]

DEFAULT_BMAX_VALUES = (400.0, 600.0, 800.0, 1000.0, 1200.0)


@dataclass(frozen=True)
class SweepPoint:
    bmax: float
    load: float
    algorithm: str
    metrics: RunMetrics


def run(
    *,
    loads: tuple[float, ...] = (0.5, 0.9),
    bmax_values: tuple[float, ...] = DEFAULT_BMAX_VALUES,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
) -> list[SweepPoint]:
    pool = bing_pool()
    spec = DatacenterSpec(pods=pods)
    points = []
    for load in loads:
        for bmax in bmax_values:
            for algorithm in algorithms:
                metrics = simulate_rejections(
                    pool,
                    algorithm,
                    load=load,
                    bmax=bmax,
                    spec=spec,
                    arrivals=arrivals,
                    seed=seed,
                )
                points.append(SweepPoint(bmax, load, algorithm, metrics))
    return points


def to_table(points: list[SweepPoint]) -> Table:
    table = Table(
        "Fig. 7 — rejection rates (%) vs B_max",
        ("load", "bmax", "algorithm", "BW rejected", "VM rejected", "tenants rejected"),
    )
    for p in points:
        table.add(
            f"{p.load:.0%}",
            f"{p.bmax:.0f}",
            p.algorithm,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.vm_rejection_rate:.1%}",
            f"{p.metrics.tenant_rejection_rate:.1%}",
        )
    return table


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--arrivals", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    points = run(pods=args.pods, arrivals=args.arrivals, seed=args.seed)
    to_table(points).show()


if __name__ == "__main__":
    main()
