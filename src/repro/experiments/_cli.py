"""Shared argparse driver for the per-experiment ``main()`` entry points.

Every experiment module's CLI is the same shape: parse a handful of grid
overrides, apply them to the module's declarative scenario, run it
through the engine, and hand the results to the module's presenter.
:func:`scenario_main` builds that function once so the experiment files
stay declarative.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine import Engine, Scenario, ScenarioResult, default_jobs, kind_axes

__all__ = ["CliOption", "scenario_main"]


@dataclass(frozen=True)
class CliOption:
    """One extra experiment-specific flag and how it rewrites the scenario."""

    flag: str
    type: Callable[[str], Any]
    default: Any
    help: str
    apply: Callable[[Scenario, Any], Scenario]

    @property
    def dest(self) -> str:
        return self.flag.lstrip("-").replace("-", "_")


def scenario_main(
    scenario: Scenario,
    doc: str | None,
    present: Callable[[ScenarioResult], None],
    options: Sequence[CliOption] = (),
) -> Callable[[list[str] | None], None]:
    """Build an experiment ``main(argv)`` around ``scenario``."""

    axes = kind_axes(scenario.kind)

    def main(argv: list[str] | None = None) -> None:
        parser = argparse.ArgumentParser(description=doc)
        # Only offer the generic grid flags this scenario's kind consumes
        # (e.g. table1 streams until full: no --arrivals).
        if "pods" in axes:
            parser.add_argument("--pods", type=int, default=scenario.pods)
        if "arrivals" in axes:
            parser.add_argument("--arrivals", type=int, default=scenario.arrivals)
        if "seeds" in axes:
            parser.add_argument("--seed", type=int, default=scenario.seeds[0])
        parser.add_argument(
            "--jobs",
            type=int,
            # Parallel-safe kinds default to cpu_count capped at
            # MAX_AUTO_JOBS; wall-clock kinds (runtime) stay serial.
            default=default_jobs(scenario.kind),
            help="worker processes for the trial matrix (0 = one per CPU; "
            "default: cpu_count capped at 8, serial for wall-clock kinds)",
        )
        for option in options:
            parser.add_argument(
                option.flag, type=option.type, default=option.default, help=option.help
            )
        args = parser.parse_args(argv)
        overridden = scenario.override(
            pods=getattr(args, "pods", None),
            arrivals=getattr(args, "arrivals", None),
            seeds=(args.seed,) if "seeds" in axes else None,
        )
        for option in options:
            overridden = option.apply(overridden, getattr(args, option.dest))
        present(Engine(n_jobs=args.jobs).run(overridden))

    return main
