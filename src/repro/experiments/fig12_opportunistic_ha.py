"""Fig. 12: default CM vs guaranteed HA vs opportunistic HA.

Across B_max: CM (no HA), CM+HA (RWCS = 50% at server level) and
CM+oppHA.  Claims: opportunistic HA achieves mean WCS comparable to the
guarantee while keeping rejected bandwidth as low as default CM; being
non-guaranteed, its per-component WCS can reach zero (error bars).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table
from repro.placement.ha import HaPolicy
from repro.simulation.metrics import RunMetrics

__all__ = ["run", "main", "SCENARIO", "MODES"]

MODES = ("cm", "cm+ha", "cm+oppha")

_VARIANTS = (
    Variant("cm", "cm"),
    Variant("cm+ha", "cm", HaPolicy(required_wcs=0.5, laa_level=0)),
    Variant("cm+oppha", "cm", HaPolicy(opportunistic=True, laa_level=0)),
)

SCENARIO = Scenario(
    name="fig12",
    title="Fig. 12 — HA mechanisms across B_max",
    kind="rejection",
    variants=_VARIANTS,
    loads=(0.7,),
    bmaxes=(400.0, 800.0, 1200.0),
)


@dataclass(frozen=True)
class HaPoint:
    bmax: float
    mode: str
    metrics: RunMetrics


def _points(result: ScenarioResult) -> list[HaPoint]:
    return [
        HaPoint(r.trial.bmax, r.trial.variant.name, r.payload) for r in result
    ]


def run(
    *,
    bmax_values: tuple[float, ...] = (400.0, 800.0, 1200.0),
    load: float = 0.7,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    n_jobs: int = 1,
) -> list[HaPoint]:
    scenario = SCENARIO.override(
        bmaxes=bmax_values,
        loads=(load,),
        pods=pods,
        arrivals=arrivals,
        seeds=(seed,),
    )
    return _points(Engine(n_jobs=n_jobs).run(scenario))


def to_table(points: list[HaPoint]) -> Table:
    table = Table(
        "Fig. 12 — HA mechanisms across B_max",
        ("bmax", "mode", "BW rejected", "mean WCS", "min WCS", "max WCS"),
    )
    for p in points:
        table.add(
            f"{p.bmax:.0f}",
            p.mode,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.wcs.mean:.1%}",
            f"{p.metrics.wcs.minimum:.1%}",
            f"{p.metrics.wcs.maximum:.1%}",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(_points(result)).show()


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
