"""Fig. 12: default CM vs guaranteed HA vs opportunistic HA.

Across B_max: CM (no HA), CM+HA (RWCS = 50% at server level) and
CM+oppHA.  Claims: opportunistic HA achieves mean WCS comparable to the
guarantee while keeping rejected bandwidth as low as default CM; being
non-guaranteed, its per-component WCS can reach zero (error bars).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.placement.ha import HaPolicy
from repro.simulation.metrics import RunMetrics
from repro.simulation.runner import simulate_rejections
from repro.topology.builder import DatacenterSpec
from repro.workloads.bing import bing_pool

__all__ = ["run", "main", "MODES"]

MODES = ("cm", "cm+ha", "cm+oppha")


@dataclass(frozen=True)
class HaPoint:
    bmax: float
    mode: str
    metrics: RunMetrics


def _policy(mode: str) -> HaPolicy | None:
    if mode == "cm":
        return None
    if mode == "cm+ha":
        return HaPolicy(required_wcs=0.5, laa_level=0)
    if mode == "cm+oppha":
        return HaPolicy(opportunistic=True, laa_level=0)
    raise ValueError(f"unknown mode {mode!r}")


def run(
    *,
    bmax_values: tuple[float, ...] = (400.0, 800.0, 1200.0),
    load: float = 0.7,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
) -> list[HaPoint]:
    pool = bing_pool()
    spec = DatacenterSpec(pods=pods)
    points = []
    for bmax in bmax_values:
        for mode in MODES:
            metrics = simulate_rejections(
                pool,
                "cm",
                load=load,
                bmax=bmax,
                spec=spec,
                arrivals=arrivals,
                seed=seed,
                ha=_policy(mode),
            )
            points.append(HaPoint(bmax, mode, metrics))
    return points


def to_table(points: list[HaPoint]) -> Table:
    table = Table(
        "Fig. 12 — HA mechanisms across B_max",
        ("bmax", "mode", "BW rejected", "mean WCS", "min WCS", "max WCS"),
    )
    for p in points:
        table.add(
            f"{p.bmax:.0f}",
            p.mode,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.wcs.mean:.1%}",
            f"{p.metrics.wcs.minimum:.1%}",
            f"{p.metrics.wcs.maximum:.1%}",
        )
    return table


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--arrivals", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    to_table(run(pods=args.pods, arrivals=args.arrivals, seed=args.seed)).show()


if __name__ == "__main__":
    main()
