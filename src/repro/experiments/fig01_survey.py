"""Fig. 1: bandwidth-to-CPU ratios of workloads vs datacenters.

Regenerates both panels as tables and checks the figure's two claims:
interactive >= batch demand ratios, and datacenter provisioning that is
adequate at the server level but short at ToR/aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table

__all__ = ["run", "Fig1Result", "main", "SCENARIO"]

SCENARIO = Scenario(
    name="fig01",
    title="Fig. 1 — workload demand vs datacenter provisioning",
    kind="survey",
    pool="",
    variants=(Variant("survey"),),
)


@dataclass(frozen=True)
class Fig1Result:
    workload_rows: Table
    datacenter_rows: Table
    interactive_median: float
    batch_median: float
    server_ratios: list[float]
    tor_ratios: list[float]
    agg_ratios: list[float]


def _to_result(result: ScenarioResult) -> Fig1Result:
    (trial_result,) = result.results
    payload = trial_result.payload

    workloads = Table(
        "Fig. 1(a) — workload BW:CPU demand (Mbps/GHz)",
        ("workload", "kind", "low", "high"),
    )
    for name, kind, low, high in payload["workload_rows"]:
        workloads.add(name, kind, low, high)

    datacenters = Table(
        "Fig. 1(b) — datacenter BW:CPU provisioning (Mbps/GHz)",
        ("datacenter", "server", "tor", "aggregation"),
    )
    server, tor, agg = [], [], []
    for name, srv, tor_ratio, agg_ratio in payload["datacenter_rows"]:
        datacenters.add(name, srv, tor_ratio, agg_ratio)
        server.append(srv)
        tor.append(tor_ratio)
        agg.append(agg_ratio)

    return Fig1Result(
        workload_rows=workloads,
        datacenter_rows=datacenters,
        interactive_median=payload["interactive_median"],
        batch_median=payload["batch_median"],
        server_ratios=server,
        tor_ratios=tor,
        agg_ratios=agg,
    )


def run(*, n_jobs: int = 1) -> Fig1Result:
    return _to_result(Engine(n_jobs=n_jobs).run(SCENARIO))


def present(result: ScenarioResult) -> None:
    fig1 = _to_result(result)
    fig1.workload_rows.show()
    fig1.datacenter_rows.show()
    print(
        f"interactive median {fig1.interactive_median:.0f} Mbps/GHz vs "
        f"batch median {fig1.batch_median:.0f} Mbps/GHz"
    )
    print(
        "datacenters: server-level provisioning covers typical demand; "
        "ToR/agg levels fall below interactive demand medians"
    )


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, aliases=("fig1",), cli=main)

if __name__ == "__main__":
    main()
