"""Fig. 1: bandwidth-to-CPU ratios of workloads vs datacenters.

Regenerates both panels as tables and checks the figure's two claims:
interactive >= batch demand ratios, and datacenter provisioning that is
adequate at the server level but short at ToR/aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments._table import Table
from repro.workloads.survey import DATACENTERS, WORKLOADS, datacenter_ratios

__all__ = ["run", "Fig1Result", "main"]


@dataclass(frozen=True)
class Fig1Result:
    workload_rows: Table
    datacenter_rows: Table
    interactive_median: float
    batch_median: float
    server_ratios: list[float]
    tor_ratios: list[float]
    agg_ratios: list[float]


def run() -> Fig1Result:
    workloads = Table(
        "Fig. 1(a) — workload BW:CPU demand (Mbps/GHz)",
        ("workload", "kind", "low", "high"),
    )
    for w in WORKLOADS:
        workloads.add(w.name, w.kind, w.low, w.high)

    datacenters = Table(
        "Fig. 1(b) — datacenter BW:CPU provisioning (Mbps/GHz)",
        ("datacenter", "server", "tor", "aggregation"),
    )
    server, tor, agg = [], [], []
    for dc in DATACENTERS:
        ratios = datacenter_ratios(dc)
        datacenters.add(dc.name, ratios["server"], ratios["tor"], ratios["aggregation"])
        server.append(ratios["server"])
        tor.append(ratios["tor"])
        agg.append(ratios["aggregation"])

    interactive = [
        float(np.sqrt(w.low * w.high)) for w in WORKLOADS if w.kind == "interactive"
    ]
    batch = [float(np.sqrt(w.low * w.high)) for w in WORKLOADS if w.kind == "batch"]
    return Fig1Result(
        workload_rows=workloads,
        datacenter_rows=datacenters,
        interactive_median=float(np.median(interactive)),
        batch_median=float(np.median(batch)),
        server_ratios=server,
        tor_ratios=tor,
        agg_ratios=agg,
    )


def main() -> None:
    result = run()
    result.workload_rows.show()
    result.datacenter_rows.show()
    print(
        f"interactive median {result.interactive_median:.0f} Mbps/GHz vs "
        f"batch median {result.batch_median:.0f} Mbps/GHz"
    )
    print(
        "datacenters: server-level provisioning covers typical demand; "
        "ToR/agg levels fall below interactive demand medians"
    )


if __name__ == "__main__":
    main()
