"""Online-service scenario: a long streaming admission run (ROADMAP #2).

The paper's §5 runs are 10k-arrival batches; an online placement service
instead sees an unbounded arrival stream and must answer every admission
at interactive latency while its bookkeeping stays O(1) in the event
count.  This driver streams a large Poisson (or diurnal) arrival run
through :class:`~repro.simulation.service.ServiceLoop` — cohort-batched
admission over the persistent candidate index — and reports steady-state
admission behaviour plus the loop's own latency quantiles.

The decisions are bit-identical to the per-event loop at any cohort size
(the differential suite in ``tests/simulation/test_service.py`` pins
this); the scenario exists to observe the *service* — throughput,
time-to-place percentiles, windowed rejection rate — not to change the
placement results.
"""

from __future__ import annotations

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import CliOption, scenario_main
from repro.experiments._table import Table

__all__ = ["run", "main", "SCENARIO"]

SCENARIO = Scenario(
    name="service",
    title="Online service — streaming cohort-batched admission",
    kind="service",
    variants=(Variant("cm"), Variant("ovoc")),
    loads=(0.9,),
    bmaxes=(800.0,),
    arrivals=20_000,
    params=(("cohort", 64), ("heartbeat", 4096), ("load_profile", "poisson")),
)


def run(
    *,
    arrivals: int = 20_000,
    load: float = 0.9,
    cohort: int = 64,
    load_profile: str = "poisson",
    pods: int | None = None,
    n_jobs: int = 1,
) -> ScenarioResult:
    scenario = SCENARIO.override(
        arrivals=arrivals,
        loads=(load,),
        pods=pods,
        params=(
            ("cohort", cohort),
            ("heartbeat", 4096),
            ("load_profile", load_profile),
        ),
    )
    return Engine(n_jobs=n_jobs).run(scenario)


def to_table(result: ScenarioResult) -> Table:
    table = Table(
        "Online service — admission stream at steady state",
        (
            "placer",
            "profile",
            "arrivals",
            "accepted",
            "rej rate",
            "window rej",
            "p50 place",
            "p99 place",
            "events/s",
        ),
    )
    for r in result:
        payload = r.payload
        timing = payload["timing"]
        table.add(
            r.trial.variant.name,
            payload["load_profile"],
            payload["arrivals"],
            payload["accepted"],
            f"{payload['rejection_rate']:.1%}",
            f"{payload['windowed_rejection_rate']:.1%}",
            f"{timing['p50_place_ms']:.2f}ms",
            f"{timing['p99_place_ms']:.2f}ms",
            f"{timing['events_per_sec']:,.0f}",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(result).show()
    for r in result:
        payload = r.payload
        utilization = payload["utilization"]
        print(
            f"{r.trial.variant.name}: {payload['cohorts']} cohorts "
            f"(max {payload['max_cohort']}), mean slot utilization "
            f"{utilization['mean_slot']:.1%}, "
            f"mean bw utilization {utilization['mean_bw']:.1%}"
        )


main = scenario_main(
    SCENARIO,
    __doc__,
    present,
    options=(
        CliOption(
            "--load-profile",
            str,
            "poisson",
            "arrival shape: poisson (flat rate) or diurnal (day/night cycle)",
            lambda scenario, value: scenario.override(
                params=tuple(
                    (key, value if key == "load_profile" else old)
                    for key, old in scenario.params
                )
            ),
        ),
        CliOption(
            "--cohort",
            int,
            64,
            "admission batch size (1 = per-event bookkeeping)",
            lambda scenario, value: scenario.override(
                params=tuple(
                    (key, value if key == "cohort" else old)
                    for key, old in scenario.params
                )
            ),
        ),
    ),
)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
