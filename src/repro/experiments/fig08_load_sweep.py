"""Fig. 8: rejection rates vs datacenter load at B_max = 800 Mbps.

"OVOC fails to deploy a set of tenants having large slot or bandwidth
demands even at low loads while CM efficiently places most of them."
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics
from repro.simulation.runner import simulate_rejections
from repro.topology.builder import DatacenterSpec
from repro.workloads.bing import bing_pool

__all__ = ["run", "main", "DEFAULT_LOADS"]

DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class LoadPoint:
    load: float
    algorithm: str
    metrics: RunMetrics


def run(
    *,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
) -> list[LoadPoint]:
    pool = bing_pool()
    spec = DatacenterSpec(pods=pods)
    points = []
    for load in loads:
        for algorithm in algorithms:
            metrics = simulate_rejections(
                pool,
                algorithm,
                load=load,
                bmax=bmax,
                spec=spec,
                arrivals=arrivals,
                seed=seed,
            )
            points.append(LoadPoint(load, algorithm, metrics))
    return points


def to_table(points: list[LoadPoint]) -> Table:
    table = Table(
        "Fig. 8 — rejection rates (%) vs load, B_max = 800 Mbps",
        ("load", "algorithm", "BW rejected", "VM rejected"),
    )
    for p in points:
        table.add(
            f"{p.load:.0%}",
            p.algorithm,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.vm_rejection_rate:.1%}",
        )
    return table


def to_chart(points: list[LoadPoint]) -> str:
    from repro.experiments._chart import line_chart

    series = {}
    for p in points:
        series.setdefault(p.algorithm, []).append(
            (p.load * 100, p.metrics.bw_rejection_rate * 100)
        )
    return line_chart(
        series,
        title="Fig. 8 — rejected bandwidth (%) vs load (%)",
        x_label="load (%)",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--arrivals", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    points = run(pods=args.pods, arrivals=args.arrivals, seed=args.seed)
    to_table(points).show()
    print(to_chart(points))


if __name__ == "__main__":
    main()
