"""Fig. 8: rejection rates vs datacenter load at B_max = 800 Mbps.

"OVOC fails to deploy a set of tenants having large slot or bandwidth
demands even at low loads while CM efficiently places most of them."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics

__all__ = ["run", "main", "SCENARIO", "DEFAULT_LOADS"]

DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)

SCENARIO = Scenario(
    name="fig08",
    title="Fig. 8 — rejection rates vs load, B_max = 800 Mbps",
    kind="rejection",
    variants=(Variant("cm"), Variant("ovoc")),
    loads=DEFAULT_LOADS,
    bmaxes=(800.0,),
)


@dataclass(frozen=True)
class LoadPoint:
    load: float
    algorithm: str
    metrics: RunMetrics


def _points(result: ScenarioResult) -> list[LoadPoint]:
    return [
        LoadPoint(r.trial.load, r.trial.variant.name, r.payload) for r in result
    ]


def run(
    *,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
    n_jobs: int = 1,
) -> list[LoadPoint]:
    scenario = SCENARIO.override(
        loads=loads,
        bmaxes=(bmax,),
        pods=pods,
        arrivals=arrivals,
        seeds=(seed,),
        variants=tuple(Variant(a) for a in algorithms),
    )
    return _points(Engine(n_jobs=n_jobs).run(scenario))


def to_table(points: list[LoadPoint]) -> Table:
    table = Table(
        "Fig. 8 — rejection rates (%) vs load, B_max = 800 Mbps",
        ("load", "algorithm", "BW rejected", "VM rejected"),
    )
    for p in points:
        table.add(
            f"{p.load:.0%}",
            p.algorithm,
            f"{p.metrics.bw_rejection_rate:.1%}",
            f"{p.metrics.vm_rejection_rate:.1%}",
        )
    return table


def to_chart(points: list[LoadPoint]) -> str:
    from repro.experiments._chart import line_chart

    series = {}
    for p in points:
        series.setdefault(p.algorithm, []).append(
            (p.load * 100, p.metrics.bw_rejection_rate * 100)
        )
    return line_chart(
        series,
        title="Fig. 8 — rejected bandwidth (%) vs load (%)",
        x_label="load (%)",
    )


def present(result: ScenarioResult) -> None:
    points = _points(result)
    to_table(points).show()
    print(to_chart(points))
    # Seed-replicated grids additionally get mean ± bootstrap CI rows
    # and a banded chart.
    from repro.results.present import seed_replicated_summary

    summary = seed_replicated_summary(
        result, metric="bw_rejection_rate", axis="load"
    )
    if summary:
        print(summary)


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, aliases=("fig8",), cli=main)

if __name__ == "__main__":
    main()
