"""Fig. 9: rejected bandwidth vs topology oversubscription, 16x - 128x.

"CM is resilient to highly bandwidth-constrained network environments
while OVOC is quickly incapable of deploying tenants."  The x-axis is the
end-to-end server-to-core oversubscription; the paper's base topology is
32x (= 4 x 8).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics
from repro.simulation.runner import simulate_rejections
from repro.topology.builder import DatacenterSpec
from repro.workloads.bing import bing_pool

__all__ = ["run", "main", "DEFAULT_OVERSUB"]

# total -> (tor_oversub, agg_oversub)
DEFAULT_OVERSUB = {16: (4.0, 4.0), 32: (4.0, 8.0), 64: (8.0, 8.0), 128: (8.0, 16.0)}


@dataclass(frozen=True)
class OversubPoint:
    oversubscription: int
    algorithm: str
    metrics: RunMetrics


def run(
    *,
    oversubscriptions: dict[int, tuple[float, float]] | None = None,
    load: float = 0.9,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
) -> list[OversubPoint]:
    oversubscriptions = oversubscriptions or DEFAULT_OVERSUB
    pool = bing_pool()
    points = []
    for total, (tor, agg) in sorted(oversubscriptions.items()):
        spec = DatacenterSpec(pods=pods, tor_oversub=tor, agg_oversub=agg)
        assert int(spec.total_oversubscription) == total
        for algorithm in algorithms:
            metrics = simulate_rejections(
                pool,
                algorithm,
                load=load,
                bmax=bmax,
                spec=spec,
                arrivals=arrivals,
                seed=seed,
            )
            points.append(OversubPoint(total, algorithm, metrics))
    return points


def to_table(points: list[OversubPoint]) -> Table:
    table = Table(
        "Fig. 9 — rejected bandwidth (%) vs oversubscription ratio",
        ("oversubscription", "algorithm", "BW rejected"),
    )
    for p in points:
        table.add(
            f"{p.oversubscription}x",
            p.algorithm,
            f"{p.metrics.bw_rejection_rate:.1%}",
        )
    return table


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--arrivals", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    to_table(run(pods=args.pods, arrivals=args.arrivals, seed=args.seed)).show()


if __name__ == "__main__":
    main()
