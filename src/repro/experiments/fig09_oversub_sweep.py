"""Fig. 9: rejected bandwidth vs topology oversubscription, 16x - 128x.

"CM is resilient to highly bandwidth-constrained network environments
while OVOC is quickly incapable of deploying tenants."  The x-axis is the
end-to-end server-to-core oversubscription; the paper's base topology is
32x (= 4 x 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, TopologyCase, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table
from repro.simulation.metrics import RunMetrics
from repro.topology.builder import DatacenterSpec

__all__ = ["run", "main", "SCENARIO", "DEFAULT_OVERSUB"]

# total -> (tor_oversub, agg_oversub)
DEFAULT_OVERSUB = {16: (4.0, 4.0), 32: (4.0, 8.0), 64: (8.0, 8.0), 128: (8.0, 16.0)}


def _topology_cases(
    oversubscriptions: dict[int, tuple[float, float]], pods: int
) -> tuple[TopologyCase, ...]:
    cases = []
    for total, (tor, agg) in sorted(oversubscriptions.items()):
        spec = DatacenterSpec(pods=pods, tor_oversub=tor, agg_oversub=agg)
        assert int(spec.total_oversubscription) == total
        cases.append(TopologyCase(f"{total}x", spec))
    return tuple(cases)


SCENARIO = Scenario(
    name="fig09",
    title="Fig. 9 — rejected bandwidth vs oversubscription ratio",
    kind="rejection",
    variants=(Variant("cm"), Variant("ovoc")),
    loads=(0.9,),
    bmaxes=(800.0,),
    topologies=_topology_cases(DEFAULT_OVERSUB, pods=2),
)


@dataclass(frozen=True)
class OversubPoint:
    oversubscription: int
    algorithm: str
    metrics: RunMetrics


def _points(result: ScenarioResult) -> list[OversubPoint]:
    return [
        OversubPoint(
            int(r.trial.topology.spec.total_oversubscription),
            r.trial.variant.name,
            r.payload,
        )
        for r in result
    ]


def run(
    *,
    oversubscriptions: dict[int, tuple[float, float]] | None = None,
    load: float = 0.9,
    bmax: float = 800.0,
    pods: int = 2,
    arrivals: int = 600,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("cm", "ovoc"),
    n_jobs: int = 1,
) -> list[OversubPoint]:
    scenario = SCENARIO.override(
        topologies=_topology_cases(oversubscriptions or DEFAULT_OVERSUB, pods),
        loads=(load,),
        bmaxes=(bmax,),
        arrivals=arrivals,
        seeds=(seed,),
        variants=tuple(Variant(a) for a in algorithms),
    )
    return _points(Engine(n_jobs=n_jobs).run(scenario))


def to_table(points: list[OversubPoint]) -> Table:
    table = Table(
        "Fig. 9 — rejected bandwidth (%) vs oversubscription ratio",
        ("oversubscription", "algorithm", "BW rejected"),
    )
    for p in points:
        table.add(
            f"{p.oversubscription}x",
            p.algorithm,
            f"{p.metrics.bw_rejection_rate:.1%}",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(_points(result)).show()


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, aliases=("fig9",), cli=main)

if __name__ == "__main__":
    main()
