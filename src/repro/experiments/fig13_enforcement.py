"""Fig. 13: TAG guarantees under ElasticSwitch-style enforcement.

VM Z (tier C2) receives TCP traffic from VM X (tier C1, 450 Mbps trunk
guarantee) and a growing number of C2 senders (450 Mbps intra hose)
through a 1 Gbps bottleneck with 10% left unreserved.  TAG mode keeps
X -> Z at its guarantee; collapsing the guarantees into one hose lets the
intra-tier traffic crowd X out (the Fig. 4 failure, quantified).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.enforcement.scenarios import Fig13Point
from repro.experiments._cli import CliOption, scenario_main
from repro.experiments._table import Table

__all__ = ["run", "main", "SCENARIO"]

SCENARIO = Scenario(
    name="fig13",
    title="Fig. 13 — TAG vs hose under enforcement",
    kind="enforce",
    pool="",
    variants=(Variant("tag"), Variant("hose")),
    xs=tuple(range(6)),
    params=(("bottleneck", 1000.0), ("guarantee", 450.0)),
)


@dataclass(frozen=True)
class Fig13Result:
    tag_points: list[Fig13Point]
    hose_points: list[Fig13Point]
    guarantee: float


def _to_result(result: ScenarioResult) -> Fig13Result:
    return Fig13Result(
        tag_points=[r.payload for r in result.by_variant("tag")],
        hose_points=[r.payload for r in result.by_variant("hose")],
        guarantee=result.scenario.param("guarantee", 450.0),
    )


def run(
    *,
    max_senders: int = 5,
    guarantee: float = 450.0,
    bottleneck: float = 1000.0,
    n_jobs: int = 1,
) -> Fig13Result:
    scenario = SCENARIO.override(
        xs=tuple(range(max_senders + 1)),
        params=(("bottleneck", bottleneck), ("guarantee", guarantee)),
    )
    return _to_result(Engine(n_jobs=n_jobs).run(scenario))


def to_table(result: Fig13Result) -> Table:
    table = Table(
        "Fig. 13 — TCP throughput of VM Z (Mbps) vs #senders in C2",
        ("C2 senders", "X->Z (TAG)", "C2->Z (TAG)", "X->Z (hose)", "C2->Z (hose)"),
    )
    # zip_longest: either mode may be absent when --placers restricts
    # the variant axis to a single abstraction.
    for tag_p, hose_p in zip_longest(result.tag_points, result.hose_points):
        table.add(
            (tag_p or hose_p).senders_in_c2,
            f"{tag_p.x_to_z:.0f}" if tag_p else "-",
            f"{tag_p.c2_to_z:.0f}" if tag_p else "-",
            f"{hose_p.x_to_z:.0f}" if hose_p else "-",
            f"{hose_p.c2_to_z:.0f}" if hose_p else "-",
        )
    return table


def to_chart(result: Fig13Result) -> str:
    from repro.experiments._chart import line_chart

    return line_chart(
        {
            "X->Z (TAG)": [
                (p.senders_in_c2, p.x_to_z) for p in result.tag_points
            ],
            "X->Z (hose)": [
                (p.senders_in_c2, p.x_to_z) for p in result.hose_points
            ],
        },
        title="Fig. 13(b) — throughput of VM Z (Mbps)",
        x_label="senders in C2",
    )


def present(result: ScenarioResult) -> None:
    fig13 = _to_result(result)
    to_table(fig13).show()
    print(to_chart(fig13))
    print(
        f"TAG keeps X->Z >= {fig13.guarantee:.0f} Mbps for every sender "
        "count; the hose baseline degrades toward 900/(k+1)."
    )


main = scenario_main(
    SCENARIO,
    __doc__,
    present,
    options=(
        CliOption(
            "--max-senders",
            int,
            5,
            "largest C2 sender count on the x-axis",
            lambda scenario, value: scenario.override(xs=tuple(range(value + 1))),
        ),
    ),
)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
