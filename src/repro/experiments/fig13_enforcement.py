"""Fig. 13: TAG guarantees under ElasticSwitch-style enforcement.

VM Z (tier C2) receives TCP traffic from VM X (tier C1, 450 Mbps trunk
guarantee) and a growing number of C2 senders (450 Mbps intra hose)
through a 1 Gbps bottleneck with 10% left unreserved.  TAG mode keeps
X -> Z at its guarantee; collapsing the guarantees into one hose lets the
intra-tier traffic crowd X out (the Fig. 4 failure, quantified).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.enforcement.scenarios import Fig13Point, fig13_scenario
from repro.experiments._table import Table

__all__ = ["run", "main"]


@dataclass(frozen=True)
class Fig13Result:
    tag_points: list[Fig13Point]
    hose_points: list[Fig13Point]
    guarantee: float


def run(
    *, max_senders: int = 5, guarantee: float = 450.0, bottleneck: float = 1000.0
) -> Fig13Result:
    tag_points = [
        fig13_scenario(k, mode="tag", guarantee=guarantee, bottleneck=bottleneck)
        for k in range(max_senders + 1)
    ]
    hose_points = [
        fig13_scenario(k, mode="hose", guarantee=guarantee, bottleneck=bottleneck)
        for k in range(max_senders + 1)
    ]
    return Fig13Result(tag_points, hose_points, guarantee)


def to_table(result: Fig13Result) -> Table:
    table = Table(
        "Fig. 13 — TCP throughput of VM Z (Mbps) vs #senders in C2",
        ("C2 senders", "X->Z (TAG)", "C2->Z (TAG)", "X->Z (hose)", "C2->Z (hose)"),
    )
    for tag_p, hose_p in zip(result.tag_points, result.hose_points):
        table.add(
            tag_p.senders_in_c2,
            f"{tag_p.x_to_z:.0f}",
            f"{tag_p.c2_to_z:.0f}",
            f"{hose_p.x_to_z:.0f}",
            f"{hose_p.c2_to_z:.0f}",
        )
    return table


def to_chart(result: Fig13Result) -> str:
    from repro.experiments._chart import line_chart

    return line_chart(
        {
            "X->Z (TAG)": [
                (p.senders_in_c2, p.x_to_z) for p in result.tag_points
            ],
            "X->Z (hose)": [
                (p.senders_in_c2, p.x_to_z) for p in result.hose_points
            ],
        },
        title="Fig. 13(b) — throughput of VM Z (Mbps)",
        x_label="senders in C2",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-senders", type=int, default=5)
    args = parser.parse_args(argv)
    result = run(max_senders=args.max_senders)
    to_table(result).show()
    print(to_chart(result))
    print(
        f"TAG keeps X->Z >= {result.guarantee:.0f} Mbps for every sender "
        "count; the hose baseline degrades toward 900/(k+1)."
    )


if __name__ == "__main__":
    main()
