"""Fig. 4 (motivation): the hose model fails to isolate guarantees.

The business-logic VM has a 500 Mbps guarantee from the web tier and
100 Mbps from the DB tier, behind a 600 Mbps bottleneck.  When both tiers
blast, the hose model (one aggregate 600 Mbps guarantee) splits the
bottleneck TCP-style and web falls short of 500; the TAG keeps the two
guarantees separate.
"""

from __future__ import annotations

import argparse

from repro.enforcement.scenarios import Fig4Outcome, fig4_scenario
from repro.experiments._table import Table

__all__ = ["run", "main"]


def run(**kwargs) -> dict[str, Fig4Outcome]:
    return {
        "tag": fig4_scenario(mode="tag", **kwargs),
        "hose": fig4_scenario(mode="hose", **kwargs),
    }


def to_table(outcomes: dict[str, Fig4Outcome]) -> Table:
    table = Table(
        "Fig. 4 — logic VM throughput by source tier (Mbps)",
        ("model", "web->logic", "db->logic", "500 Mbps web guarantee met"),
    )
    for model, outcome in outcomes.items():
        table.add(
            model,
            f"{outcome.web_to_logic:.0f}",
            f"{outcome.db_to_logic:.0f}",
            "yes" if outcome.web_guarantee_met else "NO",
        )
    return table


def main(argv: list[str] | None = None) -> None:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    to_table(run()).show()


if __name__ == "__main__":
    main()
