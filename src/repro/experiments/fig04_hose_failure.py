"""Fig. 4 (motivation): the hose model fails to isolate guarantees.

The business-logic VM has a 500 Mbps guarantee from the web tier and
100 Mbps from the DB tier, behind a 600 Mbps bottleneck.  When both tiers
blast, the hose model (one aggregate 600 Mbps guarantee) splits the
bottleneck TCP-style and web falls short of 500; the TAG keeps the two
guarantees separate.
"""

from __future__ import annotations

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.enforcement.scenarios import Fig4Outcome
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table

__all__ = ["run", "main", "SCENARIO"]

SCENARIO = Scenario(
    name="fig04",
    title="Fig. 4 — hose vs TAG guarantee isolation",
    kind="hose_fail",
    pool="",
    variants=(Variant("tag"), Variant("hose")),
)


def _to_outcomes(result: ScenarioResult) -> dict[str, Fig4Outcome]:
    return {r.trial.variant.name: r.payload for r in result}


def run(*, n_jobs: int = 1, **kwargs) -> dict[str, Fig4Outcome]:
    scenario = SCENARIO.override(params=tuple(sorted(kwargs.items())))
    return _to_outcomes(Engine(n_jobs=n_jobs).run(scenario))


def to_table(outcomes: dict[str, Fig4Outcome]) -> Table:
    table = Table(
        "Fig. 4 — logic VM throughput by source tier (Mbps)",
        ("model", "web->logic", "db->logic", "500 Mbps web guarantee met"),
    )
    for model, outcome in outcomes.items():
        table.add(
            model,
            f"{outcome.web_to_logic:.0f}",
            f"{outcome.db_to_logic:.0f}",
            "yes" if outcome.web_guarantee_met else "NO",
        )
    return table


def present(result: ScenarioResult) -> None:
    to_table(_to_outcomes(result)).show()


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, aliases=("fig4",), cli=main)

if __name__ == "__main__":
    main()
