"""§5.1 "Algorithm runtime": CM vs Oktopus vs SecondNet placement latency.

The paper reports CM "typically runs within 200 msec for tenants of up to
100s of VMs and up to a few seconds for tenants of up to 1000 VMs", that
CM and Oktopus run within the same order of magnitude, and that pipe
placement (SecondNet) is dramatically slower.  This driver times single
placements on an empty datacenter across tenant sizes.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.placement.base import Placement
from repro.simulation.runner import make_placer
from repro.topology.builder import DatacenterSpec, three_level_tree
from repro.topology.ledger import Ledger
from repro.workloads.patterns import three_tier

__all__ = ["run", "main", "DEFAULT_SIZES"]

DEFAULT_SIZES = (25, 100, 400, 1000)


@dataclass(frozen=True)
class RuntimePoint:
    vms: int
    algorithm: str
    seconds: float
    placed: bool


def _tenant(total_vms: int):
    third = max(1, total_vms // 3)
    web = total_vms - 2 * third
    return three_tier(
        f"rt-{total_vms}", (web, third, third), b1=200.0, b2=50.0, b3=20.0
    )


def run(
    *,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    pods: int = 2,
    algorithms: tuple[str, ...] = ("cm", "ovoc", "secondnet"),
    secondnet_size_cap: int = 120,
) -> list[RuntimePoint]:
    spec = DatacenterSpec(pods=pods)
    points = []
    for vms in sizes:
        tenant = _tenant(vms)
        for algorithm in algorithms:
            if algorithm == "secondnet" and vms > secondnet_size_cap:
                continue  # O(N^2) pipes; the paper reports tens of minutes
            topology = three_level_tree(spec)
            placer = make_placer(algorithm, Ledger(topology))
            started = time.perf_counter()
            result = placer.place(tenant)
            elapsed = time.perf_counter() - started
            points.append(
                RuntimePoint(vms, algorithm, elapsed, isinstance(result, Placement))
            )
    return points


def to_table(points: list[RuntimePoint]) -> Table:
    table = Table(
        "§5.1 — single-tenant placement runtime (empty datacenter)",
        ("VMs", "algorithm", "runtime (ms)", "placed"),
    )
    for p in points:
        table.add(p.vms, p.algorithm, f"{p.seconds * 1e3:.1f}", "yes" if p.placed else "NO")
    return table


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    args = parser.parse_args(argv)
    to_table(run(pods=args.pods)).show()


if __name__ == "__main__":
    main()
