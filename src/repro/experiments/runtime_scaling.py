"""§5.1 "Algorithm runtime": CM vs Oktopus vs SecondNet placement latency.

The paper reports CM "typically runs within 200 msec for tenants of up to
100s of VMs and up to a few seconds for tenants of up to 1000 VMs", that
CM and Oktopus run within the same order of magnitude, and that pipe
placement (SecondNet) is dramatically slower.  This driver times single
placements on an empty datacenter across tenant sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.experiments._cli import scenario_main
from repro.experiments._table import Table

__all__ = ["run", "main", "SCENARIO", "DEFAULT_SIZES"]

DEFAULT_SIZES = (25, 100, 400, 1000)

SCENARIO = Scenario(
    name="runtime",
    title="§5.1 — single-tenant placement runtime",
    kind="runtime",
    variants=(Variant("cm"), Variant("ovoc"), Variant("secondnet")),
    xs=DEFAULT_SIZES,
    params=(("secondnet_size_cap", 120),),
)


@dataclass(frozen=True)
class RuntimePoint:
    vms: int
    algorithm: str
    seconds: float
    placed: bool


def _points(result: ScenarioResult) -> list[RuntimePoint]:
    return [
        RuntimePoint(
            int(r.trial.x),
            r.trial.variant.name,
            r.payload["seconds"],
            r.payload["placed"],
        )
        for r in result
        if r.payload is not None  # secondnet skipped above its size cap
    ]


def run(
    *,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    pods: int = 2,
    algorithms: tuple[str, ...] = ("cm", "ovoc", "secondnet"),
    secondnet_size_cap: int = 120,
    n_jobs: int = 1,
) -> list[RuntimePoint]:
    scenario = SCENARIO.override(
        xs=sizes,
        pods=pods,
        variants=tuple(Variant(a) for a in algorithms),
        params=(("secondnet_size_cap", secondnet_size_cap),),
    )
    return _points(Engine(n_jobs=n_jobs).run(scenario))


def to_table(points: list[RuntimePoint]) -> Table:
    table = Table(
        "§5.1 — single-tenant placement runtime (empty datacenter)",
        ("VMs", "algorithm", "runtime (ms)", "placed"),
    )
    for p in points:
        table.add(p.vms, p.algorithm, f"{p.seconds * 1e3:.1f}", "yes" if p.placed else "NO")
    return table


def present(result: ScenarioResult) -> None:
    to_table(_points(result)).show()


main = scenario_main(SCENARIO, __doc__, present)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
