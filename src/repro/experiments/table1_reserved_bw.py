"""Table 1: reserved bandwidth (Gbps) per network level for three combos.

CM+TAG places with CloudMirror and accounts with Eq. 1; CM+VOC re-accounts
the *same* placement under the footnote-7 VOC requirement; OVOC places the
same accepted tenants with the improved Oktopus.  Idealized unlimited
topology, arrivals only, stop at the first slot rejection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Engine, Scenario, ScenarioResult, Variant, registry
from repro.engine.context import POOL_NAMES
from repro.experiments._cli import CliOption, scenario_main
from repro.experiments._table import Table
from repro.simulation.runner import ReservedBandwidth

__all__ = ["run", "main", "SCENARIO"]

SCENARIO = Scenario(
    name="table1",
    title="Table 1 — reserved bandwidth per network level",
    kind="reserved",
    pool="bing",
    variants=(Variant("cm+voc+ovoc", "cm"),),
    bmaxes=(800.0,),
    seeds=(1,),
    pods=8,
)


@dataclass(frozen=True)
class Table1Result:
    reserved: ReservedBandwidth
    table: Table


def _to_result(trial_result) -> Table1Result:
    reserved: ReservedBandwidth = trial_result.payload
    trial = trial_result.trial
    table = Table(
        f"Table 1 — reserved bandwidth (Gbps), {trial.pool} workload, "
        f"{trial.topology.spec.num_servers} servers, "
        f"B_max {trial.bmax:.0f}, seed {trial.seed}, "
        f"{reserved.tenants_deployed} tenants",
        ("algorithm", "server", "tor", "agg"),
    )

    def ratio(row: dict[str, float], level: str) -> str:
        base = reserved.cm_tag[level]
        if base <= 0:
            return f"{row[level]:.1f}"
        return f"{row[level]:.1f} ({row[level] / base:.2f})"

    table.add("CM+TAG", *(f"{reserved.cm_tag[x]:.1f}" for x in ReservedBandwidth.LEVELS))
    table.add("CM+VOC", *(ratio(reserved.cm_voc, x) for x in ReservedBandwidth.LEVELS))
    table.add("OVOC", *(ratio(reserved.ovoc, x) for x in ReservedBandwidth.LEVELS))
    return Table1Result(reserved=reserved, table=table)


def run(
    *,
    workload: str = "bing",
    pods: int = 8,
    bmax: float = 800.0,
    seed: int = 1,
    n_jobs: int = 1,
) -> Table1Result:
    scenario = SCENARIO.override(
        pool=workload, pods=pods, bmaxes=(bmax,), seeds=(seed,)
    )
    (trial_result,) = Engine(n_jobs=n_jobs).run(scenario).results
    return _to_result(trial_result)


def present(result: ScenarioResult) -> None:
    # One table per grid point (the CLI allows --seeds/--bmax sweeps).
    for trial_result in result:
        _to_result(trial_result).table.show()


def _str_choice(value: str) -> str:
    if value not in POOL_NAMES:
        raise ValueError(f"workload must be one of {POOL_NAMES}")
    return value


main = scenario_main(
    SCENARIO,
    __doc__,
    present,
    options=(
        CliOption(
            "--workload",
            _str_choice,
            "bing",
            f"tenant pool, one of {POOL_NAMES}",
            lambda scenario, value: scenario.override(pool=value),
        ),
        CliOption(
            "--bmax",
            float,
            800.0,
            "per-VM bandwidth scale (Mbps)",
            lambda scenario, value: scenario.override(bmaxes=(value,)),
        ),
    ),
)

registry.register(SCENARIO, present, cli=main)

if __name__ == "__main__":
    main()
