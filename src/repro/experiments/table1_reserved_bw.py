"""Table 1: reserved bandwidth (Gbps) per network level for three combos.

CM+TAG places with CloudMirror and accounts with Eq. 1; CM+VOC re-accounts
the *same* placement under the footnote-7 VOC requirement; OVOC places the
same accepted tenants with the improved Oktopus.  Idealized unlimited
topology, arrivals only, stop at the first slot rejection.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments._table import Table
from repro.simulation.runner import ReservedBandwidth, measure_reserved_bandwidth
from repro.topology.builder import DatacenterSpec
from repro.workloads.bing import bing_pool
from repro.workloads.hpcloud import hpcloud_pool
from repro.workloads.synthetic import synthetic_pool

__all__ = ["run", "main"]

_POOLS = {
    "bing": bing_pool,
    "hpcloud": hpcloud_pool,
    "synthetic": synthetic_pool,
}


@dataclass(frozen=True)
class Table1Result:
    reserved: ReservedBandwidth
    table: Table


def run(
    *,
    workload: str = "bing",
    pods: int = 8,
    bmax: float = 800.0,
    seed: int = 1,
) -> Table1Result:
    pool = _POOLS[workload]()
    spec = DatacenterSpec(pods=pods)
    reserved = measure_reserved_bandwidth(pool, bmax=bmax, spec=spec, seed=seed)
    table = Table(
        f"Table 1 — reserved bandwidth (Gbps), {workload} workload, "
        f"{spec.num_servers} servers, {reserved.tenants_deployed} tenants",
        ("algorithm", "server", "tor", "agg"),
    )

    def ratio(row: dict[str, float], level: str) -> str:
        base = reserved.cm_tag[level]
        if base <= 0:
            return f"{row[level]:.1f}"
        return f"{row[level]:.1f} ({row[level] / base:.2f})"

    table.add("CM+TAG", *(f"{reserved.cm_tag[x]:.1f}" for x in ReservedBandwidth.LEVELS))
    table.add("CM+VOC", *(ratio(reserved.cm_voc, x) for x in ReservedBandwidth.LEVELS))
    table.add("OVOC", *(ratio(reserved.ovoc, x) for x in ReservedBandwidth.LEVELS))
    return Table1Result(reserved=reserved, table=table)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=sorted(_POOLS), default="bing")
    parser.add_argument("--pods", type=int, default=8, help="8 = paper scale (2048 servers)")
    parser.add_argument("--bmax", type=float, default=800.0)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    result = run(
        workload=args.workload, pods=args.pods, bmax=args.bmax, seed=args.seed
    )
    result.table.show()


if __name__ == "__main__":
    main()
