"""First-class failure state over the flat topology arrays.

A :class:`FailureMask` attaches to any ``SlotAccountingMixin`` ledger
(the classic :class:`~repro.topology.ledger.Ledger` or the W-plane
temporal ledger) and makes failed servers, switches and uplinks a native
input to the placement scan — the FGR model of ``--failed 4 8 18``-style
node exclusion — instead of a post-hoc topology rebuild:

* per-server **cover counts** (how many failure marks currently cover
  each server) back the boolean "down" column over ``slots[]``;
* the ledger's effective slot-capacity column (``ledger.slot_cap``,
  normally an alias of the immutable ``flat.slots``) is swapped for a
  private mutable copy, and a down server's capacity drops to 0 — every
  capacity check in the placers reads this column, so no reservation can
  land on a failed server;
* the ledger's ``_free_subtree`` aggregates are adjusted along the
  failed server's ancestor tuple (the same dirty-bit funnel slot
  mutations use), so failed subtrees fall out of per-level and per-rack
  candidate orderings automatically;
* ``masked_subtree`` tracks the *capacity* masked out under every node,
  giving CloudMirror's low-bandwidth threshold the alive subtree size;
* every ``fail``/``restore`` appends one journal record (tag
  ``OP_MASK``), so a ledger rollback restores failure state exactly —
  interleaved with slot and bandwidth ops, in reverse order.

The mask is *placement-equivalent to physically pruning the topology*:
a down server contributes 0 free slots and 0 slot capacity, which is
indistinguishable from being absent for every candidate ordering,
feasibility check and equivalence-class dedup key in the four placers.
``tests/failures/`` pins that claim with a differential lockstep suite
against :func:`pruned_topology`.

Semantics:

* failing a **server** downs that server;
* failing a **switch** downs every server in its subtree (the tree has
  no alternative path around a dead switch);
* failing a **link** (a node's uplink toward its parent) disconnects
  the node's subtree, which is placement-equivalent to failing the node
  itself — :meth:`FailureMask.fail_link` records the same mark, and the
  distinction lives in the caller's metrics, not the mask;
* restoring a node clears every failure mark in its subtree; a server
  stays down while a mark *outside* the restored subtree (e.g. a failed
  ancestor switch) still covers it.

Bandwidth columns are left untouched: no reservation can involve a
failed subtree (placement never lands there, and victims release their
whole allocation), so the mask never needs to edit ``cap_up``/
``cap_down``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TopologyError
from repro.topology.ledger import OP_MASK, Journal
from repro.topology.tree import Node, Topology

__all__ = ["FailureMask", "pruned_topology"]

# Sub-kinds inside an (OP_MASK, kind, ...) journal record.
_FAIL = 0
_RESTORE = 1


class FailureMask:
    """Journalled failure state attached to one slot-accounting ledger.

    Create via ``ledger.ensure_failure_mask()`` (idempotent).  All
    mutations take the same :class:`Journal` the placement ops use, so
    ``ledger.rollback`` undoes failures and placements together.
    """

    __slots__ = ("ledger", "flat", "cover", "masked_subtree", "failed", "version")

    def __init__(self, ledger) -> None:
        self.ledger = ledger
        flat = ledger.flat
        self.flat = flat
        # cover[s] = number of failure marks whose subtree contains
        # server s; the server is down while cover[s] > 0.
        self.cover = [0] * flat.size
        # Slot *capacity* masked out under each node (alive subtree
        # slots = flat.subtree_slots - masked_subtree).
        self.masked_subtree = [0] * flat.size
        # Explicit failure marks, by node id (servers and switches).
        self.failed: set[int] = set()
        # Bumped on every fail/restore/undo; memoized derived state
        # (e.g. CloudMirror's threshold cache) keys on it.
        self.version = 0
        # Swap the ledger's shared immutable capacity alias for a
        # private mutable copy; consumers keep reading ``ledger.slot_cap``.
        ledger.slot_cap = list(flat.slots)
        ledger._down_cover = self.cover
        ledger._failure_mask = self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_failed(self, node_id: int) -> bool:
        """Is there an explicit failure mark on this node?"""
        return node_id in self.failed

    def is_down(self, server_id: int) -> bool:
        """Is this server covered by any failure mark?"""
        return self.cover[server_id] > 0

    def down_servers(self) -> tuple[int, ...]:
        """All covered server ids, in preorder."""
        cover = self.cover
        return tuple(i for i in self.flat.server_order if cover[i])

    def failed_nodes(self) -> frozenset[int]:
        return frozenset(self.failed)

    def alive_subtree_slots(self, node_id: int) -> int:
        """Slot capacity of the subtree, excluding down servers."""
        return self.flat.subtree_slots[node_id] - self.masked_subtree[node_id]

    # ------------------------------------------------------------------
    # mutations (journalled)
    # ------------------------------------------------------------------
    def fail(self, node_id: int, journal: Journal) -> tuple[int, ...]:
        """Mark a server or switch failed; returns the newly-down servers.

        A no-op (returning ``()``) if the node already carries a mark.
        """
        if node_id in self.failed:
            return ()
        lo, hi = self.flat.server_span[node_id]
        order = self.flat.server_order
        cover = self.cover
        downed = []
        for position in range(lo, hi):
            server_id = order[position]
            cover[server_id] += 1
            if cover[server_id] == 1:
                downed.append(server_id)
                self._on_down(server_id)
        self.failed.add(node_id)
        self.version += 1
        journal.ops.append((OP_MASK, _FAIL, node_id))
        return tuple(downed)

    def fail_link(self, node_id: int, journal: Journal) -> tuple[int, ...]:
        """Fail the uplink from ``node_id`` toward its parent.

        In a tree a dead uplink strands the whole subtree below it, so
        the placement effect is identical to :meth:`fail`; callers keep
        the link/switch distinction in their own metrics.
        """
        if node_id == self.flat.root_id:
            raise TopologyError("the root has no uplink to fail")
        return self.fail(node_id, journal)

    def restore(self, node_id: int, journal: Journal) -> tuple[int, ...]:
        """Clear every failure mark within the subtree of ``node_id``.

        Returns the servers that came back up (a server covered by a
        mark outside the restored subtree stays down).  No-op if the
        subtree holds no marks.
        """
        ancestors = self.flat.ancestors
        cleared = tuple(
            mark
            for mark in sorted(self.failed)
            if mark == node_id or node_id in ancestors[mark]
        )
        if not cleared:
            return ()
        order = self.flat.server_order
        span = self.flat.server_span
        cover = self.cover
        raised = []
        for mark in cleared:
            lo, hi = span[mark]
            for position in range(lo, hi):
                server_id = order[position]
                cover[server_id] -= 1
                if cover[server_id] == 0:
                    raised.append(server_id)
                    self._on_up(server_id)
        self.failed.difference_update(cleared)
        self.version += 1
        journal.ops.append((OP_MASK, _RESTORE, node_id, cleared))
        return tuple(raised)

    # ------------------------------------------------------------------
    # transitions + rollback
    # ------------------------------------------------------------------
    def _on_down(self, server_id: int) -> None:
        """Server transitioned alive -> down: mask its capacity out."""
        ledger = self.ledger
        slots = self.flat.slots[server_id]
        # Free contribution while alive was (capacity - used); once the
        # capacity column hits 0, reserve_slots refuses the server, so
        # used can only shrink (victim release) while it is down.
        free = slots - ledger._used_slots[server_id]
        ledger.slot_cap[server_id] = 0
        free_subtree = ledger._free_subtree
        masked = self.masked_subtree
        ancestors = self.flat.ancestors[server_id]
        for ancestor_id in ancestors:
            free_subtree[ancestor_id] -= free
            masked[ancestor_id] += slots
        index = ledger._candidate_index
        if index is not None:
            index.touch_path(ancestors)

    def _on_up(self, server_id: int) -> None:
        """Server transitioned down -> alive: restore its capacity."""
        ledger = self.ledger
        slots = self.flat.slots[server_id]
        free = slots - ledger._used_slots[server_id]
        ledger.slot_cap[server_id] = slots
        free_subtree = ledger._free_subtree
        masked = self.masked_subtree
        ancestors = self.flat.ancestors[server_id]
        for ancestor_id in ancestors:
            free_subtree[ancestor_id] += free
            masked[ancestor_id] -= slots
        index = ledger._candidate_index
        if index is not None:
            index.touch_path(ancestors)

    def _undo(self, op: tuple) -> None:
        """Reverse one ``(OP_MASK, ...)`` journal record.

        Called by the ledger's rollback in reverse journal order, so the
        cover counts at undo time match the state right after the op
        applied and the inverse transitions are exact.
        """
        kind = op[1]
        order = self.flat.server_order
        span = self.flat.server_span
        cover = self.cover
        if kind == _FAIL:
            node_id = op[2]
            lo, hi = span[node_id]
            for position in range(lo, hi):
                server_id = order[position]
                cover[server_id] -= 1
                if cover[server_id] == 0:
                    self._on_up(server_id)
            self.failed.discard(node_id)
        else:
            cleared = op[3]
            for mark in cleared:
                lo, hi = span[mark]
                for position in range(lo, hi):
                    server_id = order[position]
                    cover[server_id] += 1
                    if cover[server_id] == 1:
                        self._on_down(server_id)
                self.failed.add(mark)
        self.version += 1


def pruned_topology(topology: Topology, failed: Iterable[int]) -> Topology:
    """The physically-rebuilt reference: ``topology`` minus ``failed``.

    Drops every node in ``failed`` (by id) together with its subtree,
    then recursively drops switches left with no children; names,
    levels, slots, capacities and nominals are preserved and fresh dense
    depth-first ids are assigned, exactly as the builders would.  This
    is the frozen reference the differential suite compares
    :class:`FailureMask` placement against (by node *name* — ids move).

    Raises :class:`TopologyError` when no server survives.
    """
    failed_set = set(failed)
    survives: dict[int, bool] = {}

    def _survives(node: Node) -> bool:
        cached = survives.get(node.node_id)
        if cached is not None:
            return cached
        if node.node_id in failed_set:
            result = False
        elif node.is_server:
            result = True
        else:
            # any() short-circuits; evaluate all children so the memo is
            # complete for the clone pass.
            result = max([_survives(child) for child in node.children])
        survives[node.node_id] = result
        return result

    if not _survives(topology.root):
        raise TopologyError("pruned topology has no surviving servers")

    next_id = 0

    def _clone(node: Node) -> Node:
        nonlocal next_id
        copy = Node(
            next_id,
            node.name,
            node.level,
            node.slots,
            node.uplink_up,
            node.uplink_down,
            node.nominal_up,
            node.nominal_down,
        )
        next_id += 1
        for child in node.children:
            if survives[child.node_id]:
                child_copy = _clone(child)
                child_copy.parent = copy
                copy.children.append(child_copy)
        return copy

    return Topology(_clone(topology.root))
