"""Transactional slot and bandwidth reservation ledger.

The ledger is the single mutable view of a topology: per-server used VM
slots and per-node used uplink bandwidth (both directions).  It also
maintains, incrementally, the aggregate number of free slots under every
subtree so placement algorithms can do O(1) feasibility pre-checks.

All mutations go through a :class:`Journal` so that a placement attempt
can be rolled back wholesale when it fails part-way (Algorithm 1's
``Dealloc``), and so a departing tenant can release exactly what it
reserved.  Capacity violations are reported by returning ``False``;
inconsistencies (releasing more than reserved) raise :class:`LedgerError`.

State lives in flat id-indexed arrays mirroring
:class:`repro.topology.flat.FlatTopology` (used slots, used up/down
bandwidth, free slots per subtree), so capacity checks and rollbacks are
plain list indexing rather than dict lookups, and the slot aggregates
update by looping a precomputed ancestor id tuple.  Every Node-taking
method has an ``*_id`` twin operating on raw node ids; the Node methods
delegate, and hot inner loops (placement state, the placers) call the id
forms directly with ids drawn from the flat topology's path arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro import _kernels
from repro.core.constants import EPSILON
from repro.errors import LedgerError
from repro.obs import core as _obs
from repro.topology.tree import Node, Topology

__all__ = ["Ledger", "Journal", "SlotAccountingMixin"]

# Tolerance for floating-point capacity comparisons (Mbps); the single
# repo-wide value from repro.core.constants.
_EPSILON = EPSILON

# Journal op tags.  Ops are plain tuples — (tag, ...) — because placement
# sweeps journal millions of mutations and dataclass construction was a
# measurable share of trial runtime:
#   (OP_SLOTS, server_id, count)
#   (OP_BANDWIDTH, node_id, prev_up, prev_down)
# OP_SLOTS is part of the contract shared with every ledger that mixes
# in SlotAccountingMixin: their rollback dispatch must treat tag 0 as a
# slot op.  Bandwidth tags are per-ledger (the temporal ledger journals
# a different record shape under the same tag value 1).  OP_MASK records
# failure-mask transitions — (OP_MASK, kind, ...) — and is shared like
# OP_SLOTS: every mixin host's rollback hands tag 2 to the attached
# :class:`repro.topology.failures.FailureMask`.
OP_SLOTS = 0
OP_BANDWIDTH = 1
OP_MASK = 2

# The adjust kernels journal OP_BANDWIDTH records themselves; the tag
# value is part of the kernel contract (see repro._kernels.pyref).
assert OP_BANDWIDTH == 1


@dataclass
class Journal:
    """An undo log of ledger mutations for one placement attempt.

    Ops are opaque to callers; facades (e.g. the temporal ledger) may
    append their own op records and interpret them in their rollback.
    """

    ops: list[object] = field(default_factory=list)

    def savepoint(self) -> int:
        return len(self.ops)


class SlotAccountingMixin:
    """Scalar VM-slot accounting shared by the reservation ledgers.

    VM slots are time-invariant, so the classic :class:`Ledger` and the
    W-plane temporal ledger keep exactly one copy of this state.  The
    host class provides ``self.flat`` (slot capacities + ancestor id
    tuples), ``self._used_slots`` and ``self._free_subtree`` (both
    id-indexed lists), and a rollback that undoes ``(OP_SLOTS,
    server_id, count)`` journal records via :meth:`_apply_slots`.

    An optional :class:`repro.placement.candidates.CandidateIndex` can
    attach via :meth:`ensure_candidate_index`; once attached, every slot
    mutation (reserve, release and rollback all funnel through
    :meth:`_apply_slots`) marks the touched server's root-path dirty so
    the index re-scores exactly those nodes on its next lookup.
    """

    # One shared attachment point: ``None`` (the class default) keeps
    # the un-indexed fast path to a single identity test per mutation.
    _candidate_index = None
    # Failure-mask attachment (repro.topology.failures.FailureMask).
    # ``_down_cover`` aliases the mask's per-server cover counts so the
    # slot funnel pays one identity test per mutation without a mask.
    _failure_mask = None
    _down_cover = None

    def ensure_candidate_index(self):
        """The ledger's attached candidate index, created on first use."""
        if self._candidate_index is None:
            from repro.placement.candidates import CandidateIndex

            self._candidate_index = CandidateIndex(self)
        return self._candidate_index

    def ensure_failure_mask(self):
        """The ledger's attached failure mask, created on first use."""
        if self._failure_mask is None:
            from repro.topology.failures import FailureMask

            FailureMask(self)  # attaches itself (sets _failure_mask)
        return self._failure_mask

    @property
    def failure_mask(self):
        return self._failure_mask

    def mask_version(self) -> int:
        """Failure-state generation counter (0 while no mask exists)."""
        mask = self._failure_mask
        return 0 if mask is None else mask.version

    def slot_capacity_id(self, server_id: int) -> int:
        """Effective slot capacity: ``flat.slots`` unless masked down."""
        return self.slot_cap[server_id]

    def alive_subtree_slots_id(self, node_id: int) -> int:
        """Subtree slot capacity excluding failed servers."""
        mask = self._failure_mask
        if mask is None:
            return self.flat.subtree_slots[node_id]
        return self.flat.subtree_slots[node_id] - mask.masked_subtree[node_id]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def free_slots(self, node: Node) -> int:
        """Free VM slots in the subtree rooted at ``node``."""
        return self._free_subtree[node.node_id]

    def free_slots_id(self, node_id: int) -> int:
        return self._free_subtree[node_id]

    def used_slots(self, server: Node) -> int:
        return self._used_slots[server.node_id]

    def used_slots_id(self, server_id: int) -> int:
        return self._used_slots[server_id]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def reserve_slots(self, server: Node, count: int, journal: Journal) -> bool:
        """Reserve ``count`` VM slots on ``server``; False if over capacity."""
        server_id = server.node_id
        if count <= 0:
            raise LedgerError(f"slot reservation must be positive, got {count}")
        if self._used_slots[server_id] + count > self.slot_cap[server_id]:
            return False
        self._apply_slots(server_id, count)
        journal.ops.append((OP_SLOTS, server_id, count))
        return True

    def release_slots(self, server: Node, count: int) -> None:
        """Release previously reserved slots (tenant departure path)."""
        server_id = server.node_id
        if count <= 0:
            raise LedgerError(f"slot release must be positive, got {count}")
        if self._used_slots[server_id] - count < 0:
            raise LedgerError(
                f"releasing {count} slots on {server.name!r} but only "
                f"{self._used_slots[server_id]} reserved"
            )
        self._apply_slots(server_id, -count)

    def _apply_slots(self, server_id: int, count: int) -> None:
        # Every slot mutation in the repo funnels through here (reserve,
        # release, rollback) — one counter site covers them all.  The
        # guard is the obs contract: one attribute load + identity test
        # when instrumentation is off.
        c = _obs.counters
        if c is not None:
            c.bump("ledger.slot_mutations")
        self._used_slots[server_id] += count
        down = self._down_cover
        if down is not None and down[server_id]:
            # A covered server contributes 0 free slots and 0 capacity
            # regardless of ``used`` (only victim releases land here —
            # reserve_slots refuses the zeroed capacity), so the subtree
            # aggregates and candidate orderings are unaffected.  The
            # mask re-applies the current ``used`` when it comes back up.
            return
        free = self._free_subtree
        ancestors = self.flat.ancestors[server_id]
        for node_id in ancestors:
            free[node_id] -= count
        index = self._candidate_index
        if index is not None:
            index.touch_path(ancestors)


class Ledger(SlotAccountingMixin):
    """Mutable reservation state over an immutable :class:`Topology`."""

    def __init__(self, topology: Topology) -> None:
        _kernels.note_backend()
        self._topology = topology
        flat = topology.flat
        self.flat = flat
        size = flat.size
        self._used_slots = [0] * size
        self._used_up = [0.0] * size
        self._used_down = [0.0] * size
        self._free_subtree = list(flat.subtree_slots)
        # Effective slot capacity: an *alias* of the shared immutable
        # column until a FailureMask attaches and swaps in its own copy.
        self.slot_cap = flat.slots
        self._over: set[int] = set()
        self._root_id = flat.root_id
        # Finite-capacity server uplinks, for the utilization metric: the
        # capacity denominator is static, the usage numerator is summed
        # per sample in the same (node-id) order the seed code used.
        self._finite_server_ids = tuple(
            i
            for i in flat.server_order
            if math.isfinite(flat.cap_up[i]) and i != self._root_id
        )
        capacity = 0.0
        for node in topology.servers:
            if math.isfinite(node.uplink_up):
                capacity += node.uplink_up
        self._finite_server_capacity = capacity

    @property
    def topology(self) -> Topology:
        return self._topology

    # ------------------------------------------------------------------
    # queries (slot queries come from SlotAccountingMixin)
    # ------------------------------------------------------------------
    def available_up(self, node: Node) -> float:
        """Unreserved uplink capacity toward the root."""
        return self.available_up_id(node.node_id)

    def available_up_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self.flat.cap_up[node_id] - self._used_up[node_id]

    def available_down(self, node: Node) -> float:
        """Unreserved uplink capacity toward the leaves."""
        return self.available_down_id(node.node_id)

    def available_down_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self.flat.cap_down[node_id] - self._used_down[node_id]

    def nominal_available_up(self, node: Node) -> float:
        """Unreserved *nominal* uplink capacity toward the root.

        Identical to :meth:`available_up` on real topologies; on the
        idealized unlimited topology (Table 1) it reflects the realistic
        capacity the placement heuristics should reason about.
        """
        return self.nominal_available_up_id(node.node_id)

    def nominal_available_up_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self.flat.nominal_up[node_id] - self._used_up[node_id]

    def nominal_available_down(self, node: Node) -> float:
        """Unreserved nominal uplink capacity toward the leaves."""
        return self.nominal_available_down_id(node.node_id)

    def nominal_available_down_id(self, node_id: int) -> float:
        if node_id == self._root_id:
            return math.inf
        return self.flat.nominal_down[node_id] - self._used_down[node_id]

    def reserved_up(self, node: Node) -> float:
        node_id = node.node_id
        return 0.0 if node_id == self._root_id else self._used_up[node_id]

    def reserved_down(self, node: Node) -> float:
        node_id = node.node_id
        return 0.0 if node_id == self._root_id else self._used_down[node_id]

    def reserved_at_level(self, level: int) -> float:
        """Total reserved uplink bandwidth (up direction) at one tree level.

        This is the metric of Table 1: "bandwidth reserved on uplinks from
        the server / ToR / agg switch network levels".
        """
        used_up = self._used_up
        root_id = self._root_id
        return sum(
            used_up[node_id]
            for node_id in self.flat.level_ids[level]
            if node_id != root_id
        )

    def iter_utilization(self) -> Iterator[tuple[Node, float, float]]:
        """Yield ``(node, up_fraction, down_fraction)`` for capacity links."""
        for node in self._topology.nodes:
            if node.is_root or math.isinf(node.uplink_up):
                continue
            yield (
                node,
                self._used_up[node.node_id] / node.uplink_up,
                self._used_down[node.node_id] / node.uplink_down,
            )

    def server_bandwidth_fraction(self) -> float:
        """Reserved fraction of finite server uplink capacity (up direction).

        The utilization metric the cluster manager samples after every
        admission; the static capacity denominator is precomputed.
        """
        capacity = self._finite_server_capacity
        if not capacity:
            return 0.0
        used_up = self._used_up
        used = 0.0
        for node_id in self._finite_server_ids:
            used += used_up[node_id]
        return used / capacity

    # ------------------------------------------------------------------
    # mutations (journalled; slot mutations come from SlotAccountingMixin)
    # ------------------------------------------------------------------
    def adjust_uplink(
        self,
        node: Node,
        delta_up: float,
        delta_down: float,
        journal: Journal,
        enforce: bool = True,
    ) -> bool:
        """Adjust reserved uplink bandwidth by a delta.

        With ``enforce=True`` the adjustment is refused (returning False)
        when it would exceed capacity.  With ``enforce=False`` the
        adjustment always applies and over-capacity links are tracked in
        the overcommit set; placement algorithms use this to defer the
        capacity check to subtree-completion boundaries (Algorithm 1
        reserves per completed subtree, so transient mid-placement spikes
        must not reject a tenant that finally fits).
        """
        return self.adjust_uplink_id(
            node.node_id, delta_up, delta_down, journal, enforce
        )

    def adjust_uplink_id(
        self,
        node_id: int,
        delta_up: float,
        delta_down: float,
        journal: Journal,
        enforce: bool = True,
    ) -> bool:
        """Id-indexed :meth:`adjust_uplink` (the placement hot path).

        The fused adjust + feasibility check + journal append runs in
        the active :mod:`repro._kernels` backend; this wrapper keeps
        only the root fast path, the error raise, and the obs counter.
        """
        if node_id == self._root_id:
            return True
        flat = self.flat
        status = _kernels.ledger_adjust(
            self._used_up,
            self._used_down,
            flat.cap_up,
            flat.cap_down,
            self._over,
            journal.ops,
            node_id,
            delta_up,
            delta_down,
            enforce,
            _EPSILON,
        )
        if status == 2:
            name = flat.node_of[node_id].name  # type: ignore[union-attr]
            raise LedgerError(
                f"uplink reservation on {name!r} would become negative"
            )
        if status != 0:
            return False
        c = _obs.counters
        if c is not None:
            c.bump("ledger.journal_ops")
        return True

    def has_overcommit(self) -> bool:
        """Any uplink currently reserved beyond its capacity?"""
        return bool(self._over)

    def overcommitted_nodes(self) -> frozenset[int]:
        return frozenset(self._over)

    def _update_overcommit(self, node_id: int) -> None:
        over = (
            self._used_up[node_id] > self.flat.cap_up[node_id] + _EPSILON
            or self._used_down[node_id] > self.flat.cap_down[node_id] + _EPSILON
        )
        if over:
            self._over.add(node_id)
        else:
            self._over.discard(node_id)

    def release_uplink(self, node: Node, up: float, down: float) -> None:
        """Release bandwidth without journalling (tenant departure path)."""
        self.release_uplink_id(node.node_id, up, down)

    def release_uplink_id(self, node_id: int, up: float, down: float) -> None:
        if node_id == self._root_id:
            return
        new_up = self._used_up[node_id] - up
        new_down = self._used_down[node_id] - down
        if new_up < -_EPSILON or new_down < -_EPSILON:
            name = self.flat.node_of[node_id].name  # type: ignore[union-attr]
            raise LedgerError(
                f"releasing more bandwidth than reserved on {name!r}"
            )
        self._used_up[node_id] = new_up if new_up > 0.0 else 0.0
        self._used_down[node_id] = new_down if new_down > 0.0 else 0.0
        self._update_overcommit(node_id)

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def rollback(self, journal: Journal, savepoint: int = 0) -> None:
        """Undo journalled operations back to ``savepoint`` (in reverse)."""
        ops = journal.ops
        c = _obs.counters
        if c is not None and len(ops) > savepoint:
            c.bump("ledger.rollback_ops", len(ops) - savepoint)
        used_up = self._used_up
        used_down = self._used_down
        while len(ops) > savepoint:
            op = ops.pop()
            tag = op[0]
            if tag == OP_SLOTS:
                self._apply_slots(op[1], -op[2])
            elif tag == OP_BANDWIDTH:
                node_id = op[1]
                used_up[node_id] = op[2]
                used_down[node_id] = op[3]
                self._update_overcommit(node_id)
            elif tag == OP_MASK:
                self._failure_mask._undo(op)
            else:  # pragma: no cover - defensive
                raise LedgerError(f"unknown journal op {op!r}")
