"""Tree-shaped datacenter topologies (paper §4, §5 simulation setup).

A topology is a rooted tree.  Level 0 nodes are servers (they hold VM
slots); higher levels are switches (ToR, aggregation, core).  Every
non-root node has an *uplink* to its parent with independent capacities in
the two directions (``up`` = toward the root, ``down`` = toward the
leaves).  Capacities may be ``math.inf`` for the idealized unlimited
topology used in Table 1.

The tree is immutable after construction; all mutable reservation state
lives in :class:`repro.topology.ledger.Ledger`.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.errors import TopologyError

__all__ = ["Node", "Topology", "SERVER_LEVEL"]

SERVER_LEVEL = 0


class Node:
    """One tree node: a server (level 0) or a switch (level >= 1)."""

    __slots__ = (
        "node_id",
        "name",
        "level",
        "parent",
        "children",
        "slots",
        "uplink_up",
        "uplink_down",
        "nominal_up",
        "nominal_down",
    )

    def __init__(
        self,
        node_id: int,
        name: str,
        level: int,
        slots: int,
        uplink_up: float,
        uplink_down: float,
        nominal_up: float | None = None,
        nominal_down: float | None = None,
    ) -> None:
        if level < 0:
            raise TopologyError(f"node level must be >= 0, got {level}")
        if level == SERVER_LEVEL and slots <= 0:
            raise TopologyError(f"server {name!r} must have positive slots")
        if level > SERVER_LEVEL and slots != 0:
            raise TopologyError(f"switch {name!r} cannot have VM slots")
        for capacity, label in ((uplink_up, "up"), (uplink_down, "down")):
            if capacity < 0:
                raise TopologyError(f"{name!r}: {label} capacity must be >= 0")
        self.node_id = node_id
        self.name = name
        self.level = level
        self.parent: Node | None = None
        self.children: list[Node] = []
        self.slots = slots
        self.uplink_up = uplink_up
        self.uplink_down = uplink_down
        # Nominal capacities are what the heuristics reason about; they
        # equal the enforced capacities except in the Table 1 idealized
        # topology, which enforces nothing but keeps realistic nominals.
        self.nominal_up = uplink_up if nominal_up is None else nominal_up
        self.nominal_down = uplink_down if nominal_down is None else nominal_down

    @property
    def is_server(self) -> bool:
        return self.level == SERVER_LEVEL

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, level={self.level})"


class Topology:
    """An immutable rooted tree of :class:`Node` objects.

    Build one with :class:`TopologyBuilder` (see ``repro.topology.builder``
    for ready-made datacenter shapes).
    """

    def __init__(self, root: Node) -> None:
        if not root.is_root:
            raise TopologyError("topology root must have no parent")
        self._root = root
        self._by_id: dict[int, Node] = {}
        self._servers: list[Node] = []
        self._levels: dict[int, list[Node]] = {}
        self._flat = None
        self._total_slots: int | None = None
        stack = [root]
        while stack:
            node = stack.pop()
            if node.node_id in self._by_id:
                raise TopologyError(f"duplicate node id {node.node_id}")
            self._by_id[node.node_id] = node
            self._levels.setdefault(node.level, []).append(node)
            if node.is_server:
                if node.children:
                    raise TopologyError(f"server {node.name!r} cannot have children")
                self._servers.append(node)
            else:
                if not node.children:
                    raise TopologyError(f"switch {node.name!r} has no children")
                for child in reversed(node.children):
                    if child.level != node.level - 1:
                        raise TopologyError(
                            f"child {child.name!r} of {node.name!r} must be one "
                            f"level down"
                        )
                    stack.append(child)
        self._nodes = [self._by_id[i] for i in sorted(self._by_id)]

    @property
    def flat(self) -> "FlatTopology":
        """The id-indexed array view (built once, on first use).

        Precomputed ancestors, root paths, server spans and subtree slot
        totals; the ledger and the placers drive their inner loops off
        these arrays instead of walking ``Node`` pointers.
        """
        if self._flat is None:
            from repro.topology.flat import FlatTopology

            self._flat = FlatTopology(self)
        return self._flat

    @property
    def root(self) -> Node:
        return self._root

    @property
    def nodes(self) -> Sequence[Node]:
        return tuple(self._nodes)

    @property
    def servers(self) -> Sequence[Node]:
        return tuple(self._servers)

    @property
    def num_levels(self) -> int:
        return self._root.level + 1

    @property
    def total_slots(self) -> int:
        # Cached: the topology is immutable and the utilization sampler
        # reads this after every admission.
        if self._total_slots is None:
            self._total_slots = sum(server.slots for server in self._servers)
        return self._total_slots

    def node(self, node_id: int) -> Node:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise TopologyError(f"no node with id {node_id}") from None

    def slots_under(self, node: Node) -> int:
        """Total VM slots (used or not) in the subtree under ``node``."""
        return self.flat.subtree_slots[node.node_id]

    def level_nodes(self, level: int) -> Sequence[Node]:
        """All nodes at a given level (0 = servers, root at the top)."""
        if level not in self._levels:
            raise TopologyError(f"no nodes at level {level}")
        return tuple(self._levels[level])

    def ancestors(self, node: Node, *, include_self: bool = False) -> Iterator[Node]:
        """Walk from ``node`` toward the root (root included)."""
        current: Node | None = node if include_self else node.parent
        while current is not None:
            yield current
            current = current.parent

    def servers_under(self, node: Node) -> Iterator[Node]:
        """All servers in the subtree rooted at ``node``.

        Yields in the historical explicit-stack order (reversed
        preorder); SecondNet's candidate scan tie-breaks on it.
        """
        return self.flat.iter_servers_under(node.node_id)

    def path_to_root(self, node: Node) -> list[Node]:
        """Nodes whose uplinks form the path ``node -> root`` (root excluded).

        The uplink of each returned node carries the tenant's traffic when
        its VMs sit below ``node`` and peers sit elsewhere.
        """
        flat = self.flat
        node_of = flat.node_of
        return [node_of[i] for i in flat.path_up[node.node_id]]

    def describe(self) -> str:
        """A short human-readable summary used by examples and the CLI."""
        lines = [f"topology: {len(self._servers)} servers, {self.total_slots} slots"]
        for level in sorted(self._levels, reverse=True):
            nodes = self._levels[level]
            sample = nodes[0]
            capacity = (
                "inf"
                if math.isinf(sample.uplink_up)
                else f"{sample.uplink_up:.0f} Mbps"
            )
            kind = "server" if level == SERVER_LEVEL else "switch"
            uplink = "root" if sample.is_root else f"uplink {capacity}"
            lines.append(f"  level {level}: {len(nodes)} {kind}(s), {uplink}")
        return "\n".join(lines)


class TopologyBuilder:
    """Incremental builder assigning dense depth-first node ids."""

    def __init__(self) -> None:
        self._next_id = 0

    def _take_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def switch(
        self,
        name: str,
        level: int,
        uplink_up: float = math.inf,
        uplink_down: float = math.inf,
    ) -> Node:
        if level <= SERVER_LEVEL:
            raise TopologyError("switch level must be >= 1")
        return Node(self._take_id(), name, level, 0, uplink_up, uplink_down)

    def server(
        self, name: str, slots: int, uplink_up: float, uplink_down: float
    ) -> Node:
        return Node(self._take_id(), name, SERVER_LEVEL, slots, uplink_up, uplink_down)

    @staticmethod
    def attach(parent: Node, child: Node) -> None:
        if child.parent is not None:
            raise TopologyError(f"node {child.name!r} already has a parent")
        child.parent = parent
        parent.children.append(child)
