"""Datacenter tree topologies and the reservation ledger substrate."""

from repro.topology.builder import (
    DatacenterSpec,
    PodSpec,
    RackSpec,
    fat_tree,
    heterogeneous_from_spec,
    heterogeneous_tree,
    multi_rooted_tree,
    paper_datacenter,
    single_rack,
    three_level_tree,
)
from repro.topology.failures import FailureMask, pruned_topology
from repro.topology.flat import FlatTopology
from repro.topology.ledger import Journal, Ledger
from repro.topology.tree import SERVER_LEVEL, Node, Topology, TopologyBuilder

__all__ = [
    "SERVER_LEVEL",
    "DatacenterSpec",
    "FailureMask",
    "FlatTopology",
    "Journal",
    "Ledger",
    "Node",
    "PodSpec",
    "RackSpec",
    "Topology",
    "TopologyBuilder",
    "fat_tree",
    "heterogeneous_from_spec",
    "heterogeneous_tree",
    "multi_rooted_tree",
    "paper_datacenter",
    "pruned_topology",
    "single_rack",
    "three_level_tree",
]
