"""Datacenter tree topologies and the reservation ledger substrate."""

from repro.topology.builder import (
    DatacenterSpec,
    multi_rooted_tree,
    paper_datacenter,
    single_rack,
    three_level_tree,
)
from repro.topology.flat import FlatTopology
from repro.topology.ledger import Journal, Ledger
from repro.topology.tree import SERVER_LEVEL, Node, Topology, TopologyBuilder

__all__ = [
    "SERVER_LEVEL",
    "DatacenterSpec",
    "FlatTopology",
    "Journal",
    "Ledger",
    "Node",
    "multi_rooted_tree",
    "Topology",
    "TopologyBuilder",
    "paper_datacenter",
    "single_rack",
    "three_level_tree",
]
