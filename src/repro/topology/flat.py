"""Flat array-backed view of an immutable :class:`Topology`.

The placement hot path — feasibility pre-checks, root-path availability
walks, uplink re-reservations, journal rollbacks — spends its time asking
the same few questions about tree structure: what is this node's parent,
what are its ancestors, which servers sit below it, how many slots.  The
:class:`Node` object graph answers them with attribute chases and
generator frames; at millions of queries per sweep that dominates trial
runtime.

:class:`FlatTopology` materializes the answers once per topology into
contiguous id-indexed lists:

``parent[i]`` / ``level[i]`` / ``depth[i]`` / ``slots[i]``
    Scalar structure per node id (``parent`` is ``-1`` at the root).
``cap_up[i]`` / ``cap_down[i]`` / ``nominal_up[i]`` / ``nominal_down[i]``
    Uplink capacities, so the ledger never touches a ``Node`` on its
    capacity checks.
``ancestors[i]``
    ``(i, parent, ..., root)`` — the exact sequence
    ``Topology.ancestors(node, include_self=True)`` yields.
``path_up[i]``
    ``ancestors[i]`` without the root — the uplinks that carry node
    ``i``'s traffic toward the core (``Topology.path_to_root``).
``server_span[i]`` over ``server_order``
    Every subtree's servers as one contiguous ``[lo, hi)`` slice of a
    preorder server list, replacing per-call tree walks.
``subtree_slots[i]``
    Total VM slots below node ``i``.
``level_ids[level]``
    Node ids per tree level in ``Topology.level_nodes`` order, for
    level-aggregate sums (Table 1, temporal window utilization).

Everything here is immutable and derived; all *reservation* state stays
in :class:`repro.topology.ledger.Ledger`, which allocates its own
mutable arrays with the same id indexing.  Node ids from
:class:`TopologyBuilder` are dense, so the id doubles as the array
index; sparse (but non-negative) ids simply leave unused slots.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import TopologyError
from repro.topology.tree import Node, Topology

__all__ = ["FlatTopology"]


class FlatTopology:
    """Precomputed id-indexed arrays for one immutable topology."""

    __slots__ = (
        "size",
        "root_id",
        "node_of",
        "parent",
        "level",
        "depth",
        "slots",
        "is_server",
        "cap_up",
        "cap_down",
        "nominal_up",
        "nominal_down",
        "ancestors",
        "path_up",
        "server_order",
        "server_span",
        "subtree_slots",
        "server_ids",
        "children_ids",
        "level_ids",
        "num_levels",
    )

    def __init__(self, topology: Topology) -> None:
        nodes = topology.nodes
        max_id = 0
        for node in nodes:
            if node.node_id < 0:
                raise TopologyError(
                    f"flat topology requires non-negative node ids, got "
                    f"{node.node_id} on {node.name!r}"
                )
            if node.node_id > max_id:
                max_id = node.node_id
        size = max_id + 1
        self.size = size
        self.root_id = topology.root.node_id
        self.node_of: list[Node | None] = [None] * size
        self.parent = [-1] * size
        self.level = [0] * size
        self.depth = [0] * size
        self.slots = [0] * size
        self.is_server = [False] * size
        self.cap_up = [0.0] * size
        self.cap_down = [0.0] * size
        self.nominal_up = [0.0] * size
        self.nominal_down = [0.0] * size
        self.ancestors: list[tuple[int, ...]] = [()] * size
        self.path_up: list[tuple[int, ...]] = [()] * size
        self.server_span: list[tuple[int, int]] = [(0, 0)] * size
        self.subtree_slots = [0] * size
        self.children_ids: list[tuple[int, ...]] = [()] * size

        for node in nodes:
            i = node.node_id
            self.node_of[i] = node
            self.level[i] = node.level
            self.slots[i] = node.slots
            self.is_server[i] = node.is_server
            self.cap_up[i] = node.uplink_up
            self.cap_down[i] = node.uplink_down
            self.nominal_up[i] = node.nominal_up
            self.nominal_down[i] = node.nominal_down
            self.children_ids[i] = tuple(c.node_id for c in node.children)

        # One preorder pass computes ancestors, depth, server spans and
        # subtree slot totals.  Each stack entry is (node, entered):
        # first visit records the span start and pushes children; the
        # second closes the span and folds slots into every ancestor.
        server_order: list[int] = []
        stack: list[tuple[Node, bool]] = [(topology.root, False)]
        while stack:
            node, entered = stack.pop()
            i = node.node_id
            if entered:
                lo = self.server_span[i][0]
                self.server_span[i] = (lo, len(server_order))
                continue
            parent = node.parent
            if parent is None:
                self.ancestors[i] = (i,)
                self.path_up[i] = ()
            else:
                p = parent.node_id
                self.parent[i] = p
                self.depth[i] = self.depth[p] + 1
                self.ancestors[i] = (i,) + self.ancestors[p]
                self.path_up[i] = (i,) + self.path_up[p]
            self.server_span[i] = (len(server_order), len(server_order))
            stack.append((node, True))
            if node.is_server:
                server_order.append(i)
                for ancestor in self.ancestors[i]:
                    self.subtree_slots[ancestor] += node.slots
            else:
                for child in reversed(node.children):
                    stack.append((child, False))
        self.server_order = tuple(server_order)
        self.server_ids = frozenset(server_order)
        # Per-level node id slices in ``Topology.level_nodes`` order, so
        # level-aggregate consumers (Table 1 accounting, the temporal
        # ledger's window utilization) sum ids instead of walking Nodes
        # while keeping the legacy float summation order.
        self.num_levels = topology.num_levels
        self.level_ids: tuple[tuple[int, ...], ...] = tuple(
            tuple(node.node_id for node in topology.level_nodes(level))
            for level in range(self.num_levels)
        )

    # ------------------------------------------------------------------
    # structure queries (Node-level convenience over the arrays)
    # ------------------------------------------------------------------
    def servers_under_id(self, node_id: int) -> Sequence[int]:
        """Server ids in the subtree under ``node_id``, in preorder."""
        lo, hi = self.server_span[node_id]
        return self.server_order[lo:hi]

    def iter_servers_under(self, node_id: int) -> Iterator[Node]:
        """Servers under ``node_id`` in the legacy tree-walk order.

        The seed implementation yielded servers via an explicit stack,
        i.e. in *reversed* preorder; SecondNet's candidate scan
        tie-breaks on that order, so it is part of the behavior
        contract.
        """
        lo, hi = self.server_span[node_id]
        order = self.server_order
        node_of = self.node_of
        for index in range(hi - 1, lo - 1, -1):
            yield node_of[order[index]]  # type: ignore[misc]

    def path_to_root_ids(self, node_id: int) -> tuple[int, ...]:
        """Ids whose uplinks form ``node -> root`` (root excluded)."""
        return self.path_up[node_id]

    def lca_id(self, a: int, b: int) -> int:
        """Lowest common ancestor of two node ids."""
        parent = self.parent
        depth = self.depth
        while depth[a] > depth[b]:
            a = parent[a]
        while depth[b] > depth[a]:
            b = parent[b]
        while a != b:
            a = parent[a]
            b = parent[b]
        return a
