"""Ready-made datacenter topologies (paper §5 simulation setup).

The paper simulates "a tree-shaped 3-level network topology inspired by a
real cloud datacenter, with 2048 servers", 25 VM slots per server, 10 Gbps
server uplinks and 32:8:1 oversubscription between the server, ToR and
aggregation levels (mimicking Facebook's published datacenter numbers).

:func:`three_level_tree` builds that shape parametrically; the benchmark
defaults shrink the server count but keep the shape and oversubscription.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.topology.tree import Node, Topology, TopologyBuilder

__all__ = [
    "DatacenterSpec",
    "PodSpec",
    "RackSpec",
    "fat_tree",
    "heterogeneous_from_spec",
    "heterogeneous_tree",
    "multi_rooted_tree",
    "paper_datacenter",
    "single_rack",
    "three_level_tree",
]

# Levels of the standard 3-level tree.
LEVEL_SERVER = 0
LEVEL_TOR = 1
LEVEL_AGG = 2
LEVEL_CORE = 3


@dataclass(frozen=True)
class DatacenterSpec:
    """Parameters of the standard 3-level oversubscribed datacenter.

    ``tor_oversub`` is the ratio between a rack's aggregate server
    bandwidth and the ToR uplink; ``agg_oversub`` between a pod's aggregate
    ToR-uplink bandwidth and the agg uplink.  The paper's 32:8:1 topology
    corresponds to ``tor_oversub=4`` and ``agg_oversub=8`` (32/8 and 8/1).
    """

    servers_per_rack: int = 32
    racks_per_pod: int = 8
    pods: int = 8
    slots_per_server: int = 25
    server_uplink: float = 10_000.0  # 10 Gbps in Mbps
    tor_oversub: float = 4.0
    agg_oversub: float = 8.0

    def __post_init__(self) -> None:
        if min(self.servers_per_rack, self.racks_per_pod, self.pods) < 1:
            raise TopologyError("datacenter dimensions must be >= 1")
        if self.slots_per_server < 1:
            raise TopologyError("slots_per_server must be >= 1")
        if self.server_uplink <= 0:
            raise TopologyError("server_uplink must be positive")
        if self.tor_oversub < 1 or self.agg_oversub < 1:
            raise TopologyError("oversubscription factors must be >= 1")

    @property
    def num_servers(self) -> int:
        return self.servers_per_rack * self.racks_per_pod * self.pods

    @property
    def total_slots(self) -> int:
        return self.num_servers * self.slots_per_server

    @property
    def tor_uplink(self) -> float:
        if math.isinf(self.server_uplink):
            return math.inf
        return self.servers_per_rack * self.server_uplink / self.tor_oversub

    @property
    def agg_uplink(self) -> float:
        if math.isinf(self.server_uplink):
            return math.inf
        return self.racks_per_pod * self.tor_uplink / self.agg_oversub

    @property
    def total_oversubscription(self) -> float:
        """End-to-end server-to-core oversubscription (Fig. 9 x-axis)."""
        return self.tor_oversub * self.agg_oversub


def three_level_tree(spec: DatacenterSpec, *, unlimited: bool = False) -> Topology:
    """Build the standard server / ToR / agg / core tree from a spec.

    With ``unlimited=True`` the enforced capacities become infinite (the
    idealized Table 1 topology) while the spec's real values remain as the
    *nominal* capacities that placement heuristics reason about.
    """
    builder = TopologyBuilder()

    def capacity(value: float) -> float:
        return math.inf if unlimited else value

    core = builder.switch("core", LEVEL_CORE)
    for pod in range(spec.pods):
        agg = Node(
            builder._take_id(),
            f"agg-{pod}",
            LEVEL_AGG,
            0,
            capacity(spec.agg_uplink),
            capacity(spec.agg_uplink),
            spec.agg_uplink,
            spec.agg_uplink,
        )
        TopologyBuilder.attach(core, agg)
        for rack in range(spec.racks_per_pod):
            tor = Node(
                builder._take_id(),
                f"tor-{pod}-{rack}",
                LEVEL_TOR,
                0,
                capacity(spec.tor_uplink),
                capacity(spec.tor_uplink),
                spec.tor_uplink,
                spec.tor_uplink,
            )
            TopologyBuilder.attach(agg, tor)
            for index in range(spec.servers_per_rack):
                server = Node(
                    builder._take_id(),
                    f"srv-{pod}-{rack}-{index}",
                    LEVEL_SERVER,
                    spec.slots_per_server,
                    capacity(spec.server_uplink),
                    capacity(spec.server_uplink),
                    spec.server_uplink,
                    spec.server_uplink,
                )
                TopologyBuilder.attach(tor, server)
    return Topology(core)


def multi_rooted_tree(spec: DatacenterSpec, cores: int = 4) -> Topology:
    """A multi-rooted (k-core) datacenter as a logical single-root tree.

    Paper §4: "For simplicity, we describe our algorithm assuming a
    single-rooted tree, however our algorithm can similarly be applied to
    a multi-rooted tree."  With ECMP spreading traffic evenly over the
    ``cores`` core switches, the bandwidth available between two pods is
    the *sum* of the per-core paths, so for reservation accounting the
    multi-root collapses to one logical core whose agg uplinks carry
    ``cores`` times the per-core capacity.  That collapsed tree is what
    this builder constructs; the placement algorithms run on it
    unchanged.
    """
    if cores < 1:
        raise TopologyError("need at least one core switch")
    fattened = DatacenterSpec(
        servers_per_rack=spec.servers_per_rack,
        racks_per_pod=spec.racks_per_pod,
        pods=spec.pods,
        slots_per_server=spec.slots_per_server,
        server_uplink=spec.server_uplink,
        tor_oversub=spec.tor_oversub,
        # Each of the `cores` planes carries agg_uplink; the logical
        # aggregate divides the oversubscription accordingly (floored so
        # the spec invariant oversub >= 1 holds).
        agg_oversub=max(1.0, spec.agg_oversub / cores),
    )
    return three_level_tree(fattened)


@dataclass(frozen=True)
class RackSpec:
    """One rack of a heterogeneous fabric: its own size, slots, NICs.

    ``tor_uplink=None`` derives the uplink from the rack's aggregate
    server bandwidth and ``tor_oversub`` (the homogeneous rule); an
    explicit value overrides it — per-tier capacity vectors are just
    racks/pods with explicit uplinks.
    """

    servers: int = 32
    slots_per_server: int = 25
    server_uplink: float = 10_000.0
    tor_oversub: float = 4.0
    tor_uplink: float | None = None

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise TopologyError("rack must have >= 1 server")
        if self.slots_per_server < 1:
            raise TopologyError("slots_per_server must be >= 1")
        if self.server_uplink <= 0:
            raise TopologyError("server_uplink must be positive")
        if self.tor_oversub < 1:
            raise TopologyError("tor_oversub must be >= 1")
        if self.tor_uplink is not None and self.tor_uplink <= 0:
            raise TopologyError("tor_uplink must be positive")

    @property
    def effective_tor_uplink(self) -> float:
        if self.tor_uplink is not None:
            return self.tor_uplink
        if math.isinf(self.server_uplink):
            return math.inf
        return self.servers * self.server_uplink / self.tor_oversub


@dataclass(frozen=True)
class PodSpec:
    """One pod: an arbitrary mix of racks behind one agg switch."""

    racks: tuple[RackSpec, ...]
    agg_oversub: float = 8.0
    agg_uplink: float | None = None

    def __post_init__(self) -> None:
        if not self.racks:
            raise TopologyError("pod must have >= 1 rack")
        if self.agg_oversub < 1:
            raise TopologyError("agg_oversub must be >= 1")
        if self.agg_uplink is not None and self.agg_uplink <= 0:
            raise TopologyError("agg_uplink must be positive")

    @property
    def effective_agg_uplink(self) -> float:
        if self.agg_uplink is not None:
            return self.agg_uplink
        total = sum(rack.effective_tor_uplink for rack in self.racks)
        return math.inf if math.isinf(total) else total / self.agg_oversub


def heterogeneous_tree(pods: tuple[PodSpec, ...] | list[PodSpec]) -> Topology:
    """A 3-level tree with per-pod / per-rack capacity and slot vectors.

    Same node naming and id assignment (depth-first preorder) as
    :func:`three_level_tree`, so symmetric specs and heterogeneous specs
    produce interchangeable layouts when the dimensions coincide — the
    failure suite's pruned-reference comparisons rely on that.
    """
    if not pods:
        raise TopologyError("need at least one pod")
    builder = TopologyBuilder()
    core = builder.switch("core", LEVEL_CORE)
    for pod_index, pod in enumerate(pods):
        agg_uplink = pod.effective_agg_uplink
        agg = Node(
            builder._take_id(),
            f"agg-{pod_index}",
            LEVEL_AGG,
            0,
            agg_uplink,
            agg_uplink,
        )
        TopologyBuilder.attach(core, agg)
        for rack_index, rack in enumerate(pod.racks):
            tor_uplink = rack.effective_tor_uplink
            tor = Node(
                builder._take_id(),
                f"tor-{pod_index}-{rack_index}",
                LEVEL_TOR,
                0,
                tor_uplink,
                tor_uplink,
            )
            TopologyBuilder.attach(agg, tor)
            for index in range(rack.servers):
                server = Node(
                    builder._take_id(),
                    f"srv-{pod_index}-{rack_index}-{index}",
                    LEVEL_SERVER,
                    rack.slots_per_server,
                    rack.server_uplink,
                    rack.server_uplink,
                )
                TopologyBuilder.attach(tor, server)
    return Topology(core)


def heterogeneous_from_spec(
    spec: DatacenterSpec, *, big_every: int = 2
) -> Topology:
    """A deterministic heterogeneous variant of a symmetric spec.

    Every ``big_every``-th rack trades server count for density: half as
    many servers (at least one), each with double slots and a double-
    speed NIC — total slot capacity stays within one rack of the
    symmetric fabric while rack sizes, per-server capacities and ToR
    uplinks all diverge.  This is the default fabric of the ``failure``
    scenario; keyed only by the spec, so the engine can cache it.
    """
    if big_every < 1:
        raise TopologyError("big_every must be >= 1")
    plain = RackSpec(
        servers=spec.servers_per_rack,
        slots_per_server=spec.slots_per_server,
        server_uplink=spec.server_uplink,
        tor_oversub=spec.tor_oversub,
    )
    dense = RackSpec(
        servers=max(1, spec.servers_per_rack // 2),
        slots_per_server=spec.slots_per_server * 2,
        server_uplink=spec.server_uplink * 2,
        tor_oversub=spec.tor_oversub,
    )
    pods = tuple(
        PodSpec(
            racks=tuple(
                dense if rack % big_every == big_every - 1 else plain
                for rack in range(spec.racks_per_pod)
            ),
            agg_oversub=spec.agg_oversub,
        )
        for _ in range(spec.pods)
    )
    return heterogeneous_tree(pods)


def fat_tree(
    k: int,
    *,
    slots_per_server: int = 4,
    server_uplink: float = 1_000.0,
) -> Topology:
    """A k-ary fat-tree collapsed to its logical reservation tree.

    The canonical fat-tree has k pods of k/2 edge and k/2 aggregation
    switches, k/2 servers per edge switch, and (k/2)^2 cores, every link
    at NIC speed.  With ECMP spreading reservations evenly over the
    equal-cost paths, each edge switch's k/2 uplinks collapse to one
    logical ToR uplink of (k/2) x NIC, and each pod's (k/2)^2 core links
    collapse to one logical agg uplink of (k/2)^2 x NIC — a rearrangeably
    non-blocking fabric, i.e. 1:1 oversubscription at every tier (the
    multi-rooted counterpart of :func:`multi_rooted_tree`'s collapsed
    core).
    """
    if k < 2 or k % 2:
        raise TopologyError("fat-tree arity k must be an even number >= 2")
    half = k // 2
    rack = RackSpec(
        servers=half,
        slots_per_server=slots_per_server,
        server_uplink=server_uplink,
        tor_uplink=half * server_uplink,
    )
    pod = PodSpec(racks=(rack,) * half, agg_uplink=half * half * server_uplink)
    return heterogeneous_tree((pod,) * k)


def single_rack(
    servers: int = 4, slots_per_server: int = 2, nic_mbps: float = 10.0
) -> Topology:
    """The tiny rack of paper Fig. 6 (used by tests and examples)."""
    builder = TopologyBuilder()
    tor = builder.switch("tor", LEVEL_TOR)
    for index in range(servers):
        server = builder.server(
            f"srv-{index}", slots_per_server, nic_mbps, nic_mbps
        )
        TopologyBuilder.attach(tor, server)
    return Topology(tor)


def paper_datacenter(
    *,
    scale: float = 1.0,
    slots_per_server: int = 25,
    oversubscription: tuple[float, float] = (4.0, 8.0),
    unlimited: bool = False,
) -> Topology:
    """The §5 simulation datacenter, optionally scaled down.

    ``scale=1.0`` gives the paper's 2048 servers; ``scale=0.125`` gives 256
    servers with the same shape.  ``unlimited=True`` removes all capacity
    constraints (the idealized topology of Table 1).
    """
    if scale <= 0:
        raise TopologyError("scale must be positive")
    pods = max(1, round(8 * scale))
    spec = DatacenterSpec(
        servers_per_rack=32,
        racks_per_pod=8,
        pods=pods,
        slots_per_server=slots_per_server,
        server_uplink=10_000.0,
        tor_oversub=oversubscription[0],
        agg_oversub=oversubscription[1],
    )
    return three_level_tree(spec, unlimited=unlimited)
