"""Ready-made datacenter topologies (paper §5 simulation setup).

The paper simulates "a tree-shaped 3-level network topology inspired by a
real cloud datacenter, with 2048 servers", 25 VM slots per server, 10 Gbps
server uplinks and 32:8:1 oversubscription between the server, ToR and
aggregation levels (mimicking Facebook's published datacenter numbers).

:func:`three_level_tree` builds that shape parametrically; the benchmark
defaults shrink the server count but keep the shape and oversubscription.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.topology.tree import Node, Topology, TopologyBuilder

__all__ = ["DatacenterSpec", "three_level_tree", "single_rack", "paper_datacenter"]

# Levels of the standard 3-level tree.
LEVEL_SERVER = 0
LEVEL_TOR = 1
LEVEL_AGG = 2
LEVEL_CORE = 3


@dataclass(frozen=True)
class DatacenterSpec:
    """Parameters of the standard 3-level oversubscribed datacenter.

    ``tor_oversub`` is the ratio between a rack's aggregate server
    bandwidth and the ToR uplink; ``agg_oversub`` between a pod's aggregate
    ToR-uplink bandwidth and the agg uplink.  The paper's 32:8:1 topology
    corresponds to ``tor_oversub=4`` and ``agg_oversub=8`` (32/8 and 8/1).
    """

    servers_per_rack: int = 32
    racks_per_pod: int = 8
    pods: int = 8
    slots_per_server: int = 25
    server_uplink: float = 10_000.0  # 10 Gbps in Mbps
    tor_oversub: float = 4.0
    agg_oversub: float = 8.0

    def __post_init__(self) -> None:
        if min(self.servers_per_rack, self.racks_per_pod, self.pods) < 1:
            raise TopologyError("datacenter dimensions must be >= 1")
        if self.slots_per_server < 1:
            raise TopologyError("slots_per_server must be >= 1")
        if self.server_uplink <= 0:
            raise TopologyError("server_uplink must be positive")
        if self.tor_oversub < 1 or self.agg_oversub < 1:
            raise TopologyError("oversubscription factors must be >= 1")

    @property
    def num_servers(self) -> int:
        return self.servers_per_rack * self.racks_per_pod * self.pods

    @property
    def total_slots(self) -> int:
        return self.num_servers * self.slots_per_server

    @property
    def tor_uplink(self) -> float:
        if math.isinf(self.server_uplink):
            return math.inf
        return self.servers_per_rack * self.server_uplink / self.tor_oversub

    @property
    def agg_uplink(self) -> float:
        if math.isinf(self.server_uplink):
            return math.inf
        return self.racks_per_pod * self.tor_uplink / self.agg_oversub

    @property
    def total_oversubscription(self) -> float:
        """End-to-end server-to-core oversubscription (Fig. 9 x-axis)."""
        return self.tor_oversub * self.agg_oversub


def three_level_tree(spec: DatacenterSpec, *, unlimited: bool = False) -> Topology:
    """Build the standard server / ToR / agg / core tree from a spec.

    With ``unlimited=True`` the enforced capacities become infinite (the
    idealized Table 1 topology) while the spec's real values remain as the
    *nominal* capacities that placement heuristics reason about.
    """
    builder = TopologyBuilder()

    def capacity(value: float) -> float:
        return math.inf if unlimited else value

    core = builder.switch("core", LEVEL_CORE)
    for pod in range(spec.pods):
        agg = Node(
            builder._take_id(),
            f"agg-{pod}",
            LEVEL_AGG,
            0,
            capacity(spec.agg_uplink),
            capacity(spec.agg_uplink),
            spec.agg_uplink,
            spec.agg_uplink,
        )
        TopologyBuilder.attach(core, agg)
        for rack in range(spec.racks_per_pod):
            tor = Node(
                builder._take_id(),
                f"tor-{pod}-{rack}",
                LEVEL_TOR,
                0,
                capacity(spec.tor_uplink),
                capacity(spec.tor_uplink),
                spec.tor_uplink,
                spec.tor_uplink,
            )
            TopologyBuilder.attach(agg, tor)
            for index in range(spec.servers_per_rack):
                server = Node(
                    builder._take_id(),
                    f"srv-{pod}-{rack}-{index}",
                    LEVEL_SERVER,
                    spec.slots_per_server,
                    capacity(spec.server_uplink),
                    capacity(spec.server_uplink),
                    spec.server_uplink,
                    spec.server_uplink,
                )
                TopologyBuilder.attach(tor, server)
    return Topology(core)


def multi_rooted_tree(spec: DatacenterSpec, cores: int = 4) -> Topology:
    """A multi-rooted (k-core) datacenter as a logical single-root tree.

    Paper §4: "For simplicity, we describe our algorithm assuming a
    single-rooted tree, however our algorithm can similarly be applied to
    a multi-rooted tree."  With ECMP spreading traffic evenly over the
    ``cores`` core switches, the bandwidth available between two pods is
    the *sum* of the per-core paths, so for reservation accounting the
    multi-root collapses to one logical core whose agg uplinks carry
    ``cores`` times the per-core capacity.  That collapsed tree is what
    this builder constructs; the placement algorithms run on it
    unchanged.
    """
    if cores < 1:
        raise TopologyError("need at least one core switch")
    fattened = DatacenterSpec(
        servers_per_rack=spec.servers_per_rack,
        racks_per_pod=spec.racks_per_pod,
        pods=spec.pods,
        slots_per_server=spec.slots_per_server,
        server_uplink=spec.server_uplink,
        tor_oversub=spec.tor_oversub,
        # Each of the `cores` planes carries agg_uplink; the logical
        # aggregate divides the oversubscription accordingly (floored so
        # the spec invariant oversub >= 1 holds).
        agg_oversub=max(1.0, spec.agg_oversub / cores),
    )
    return three_level_tree(fattened)


def single_rack(
    servers: int = 4, slots_per_server: int = 2, nic_mbps: float = 10.0
) -> Topology:
    """The tiny rack of paper Fig. 6 (used by tests and examples)."""
    builder = TopologyBuilder()
    tor = builder.switch("tor", LEVEL_TOR)
    for index in range(servers):
        server = builder.server(
            f"srv-{index}", slots_per_server, nic_mbps, nic_mbps
        )
        TopologyBuilder.attach(tor, server)
    return Topology(tor)


def paper_datacenter(
    *,
    scale: float = 1.0,
    slots_per_server: int = 25,
    oversubscription: tuple[float, float] = (4.0, 8.0),
    unlimited: bool = False,
) -> Topology:
    """The §5 simulation datacenter, optionally scaled down.

    ``scale=1.0`` gives the paper's 2048 servers; ``scale=0.125`` gives 256
    servers with the same shape.  ``unlimited=True`` removes all capacity
    constraints (the idealized topology of Table 1).
    """
    if scale <= 0:
        raise TopologyError("scale must be positive")
    pods = max(1, round(8 * scale))
    spec = DatacenterSpec(
        servers_per_rack=32,
        racks_per_pod=8,
        pods=pods,
        slots_per_server=slots_per_server,
        server_uplink=10_000.0,
        tor_oversub=oversubscription[0],
        agg_oversub=oversubscription[1],
    )
    return three_level_tree(spec, unlimited=unlimited)
