"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Placement failures are *not*
exceptions: placers return rejection results, because a rejected tenant is
an expected outcome of admission control, not a programming error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TagError(ReproError):
    """Raised for malformed Tenant Application Graphs."""


class UnknownComponentError(TagError):
    """Raised when an edge or query references a component not in the TAG."""


class DuplicateComponentError(TagError):
    """Raised when a component name is added twice to one TAG."""


class DuplicateEdgeError(TagError):
    """Raised when the same directed edge is added twice to one TAG."""


class InvalidGuaranteeError(TagError):
    """Raised for negative or non-finite bandwidth guarantees."""


class InvalidSizeError(TagError):
    """Raised for non-positive component sizes."""


class TopologyError(ReproError):
    """Raised for malformed topology construction or queries."""


class LedgerError(ReproError):
    """Raised when the reservation ledger is used inconsistently.

    Note: *insufficient capacity* is reported via return values, not this
    exception.  LedgerError signals bugs such as releasing more bandwidth
    than was reserved.
    """


class ModelError(ReproError):
    """Raised for malformed hose / VOC / pipe abstractions."""


class SimulationError(ReproError):
    """Raised for inconsistent simulation configuration."""


class InferenceError(ReproError):
    """Raised for invalid inputs to the TAG inference pipeline."""


class EnforcementError(ReproError):
    """Raised for malformed enforcement-simulation setups."""


class EngineError(ReproError):
    """Raised for invalid scenario definitions or engine configuration."""


class ResultsError(ReproError):
    """Raised for results-store misuse: missing codecs, malformed shard
    specs, or stores that cannot be opened or merged."""
