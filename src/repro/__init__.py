"""CloudMirror/TAG reproduction — application-driven bandwidth guarantees.

Reproduces Lee et al., "Application-Driven Bandwidth Guarantees in
Datacenters" (SIGCOMM 2014): the Tenant Application Graph abstraction,
the CloudMirror placement algorithm with high-availability extensions,
baseline abstractions and placers (hose/VC, VOC/Oktopus, pipe/SecondNet),
TAG inference from raw traffic, and an ElasticSwitch-style enforcement
model — plus the full §5 evaluation harness.

Quickstart::

    from repro import Tag, CloudMirrorPlacer, Ledger, paper_datacenter

    tag = Tag("shop")
    tag.add_component("web", size=8)
    tag.add_component("db", size=4)
    tag.add_edge("web", "db", send=100.0, recv=200.0)
    tag.add_self_loop("db", 50.0)

    ledger = Ledger(paper_datacenter(scale=0.125))
    result = CloudMirrorPlacer(ledger).place(tag)
"""

from repro.core import (
    BandwidthDemand,
    Component,
    Tag,
    TagEdge,
    uplink_requirement,
)
from repro.engine import (
    Engine,
    Scenario,
    ScenarioResult,
    TopologyCase,
    Trial,
    TrialResult,
    Variant,
)
from repro.placement import (
    CloudMirrorPlacer,
    HaPolicy,
    OktopusPlacer,
    Placement,
    Rejection,
    SecondNetPlacer,
    TenantAllocation,
    allocation_wcs,
)
from repro.topology import (
    DatacenterSpec,
    Ledger,
    Topology,
    paper_datacenter,
    single_rack,
    three_level_tree,
)

__version__ = "1.1.0"

__all__ = [
    "BandwidthDemand",
    "CloudMirrorPlacer",
    "Component",
    "DatacenterSpec",
    "Engine",
    "HaPolicy",
    "Ledger",
    "OktopusPlacer",
    "Placement",
    "Rejection",
    "Scenario",
    "ScenarioResult",
    "SecondNetPlacer",
    "Tag",
    "TagEdge",
    "TenantAllocation",
    "Topology",
    "TopologyCase",
    "Trial",
    "TrialResult",
    "Variant",
    "allocation_wcs",
    "paper_datacenter",
    "single_rack",
    "three_level_tree",
    "uplink_requirement",
    "__version__",
]
