"""End-to-end validation: reservations vs. admissible traffic (Eq. 1)."""

from repro.validation.traffic_check import (
    VmIndex,
    link_loads,
    sample_admissible_matrix,
    validate_allocation,
)

__all__ = [
    "VmIndex",
    "link_loads",
    "sample_admissible_matrix",
    "validate_allocation",
]
