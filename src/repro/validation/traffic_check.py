"""End-to-end guarantee validation: placements vs. actual traffic.

Eq. 1 promises that the bandwidth reserved on every uplink suffices for
*any* traffic matrix consistent with the TAG.  This module closes the
loop operationally:

1. :func:`sample_admissible_matrix` draws a random VM-to-VM rate matrix
   that respects every TAG guarantee (per-VM per-edge send/receive caps —
   the traffic a tenant is entitled to push),
2. :func:`link_loads` routes it over the tree through the tenant's
   actual placement,
3. :func:`validate_allocation` asserts no uplink carries more than the
   tenant's reservation on it.

Used by integration tests as a randomized proof that the reservation
math and the placement bookkeeping agree; any overload would mean a
guarantee that admission control sold but the network cannot deliver.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.constants import EPSILON
from repro.core.tag import Tag
from repro.errors import SimulationError
from repro.topology.tree import Node

__all__ = [
    "VmIndex",
    "sample_admissible_matrix",
    "link_loads",
    "validate_allocation",
]


@dataclass(frozen=True)
class VmIndex:
    """Dense VM numbering for one placed tenant: VM i -> (tier, server)."""

    tiers: tuple[str, ...]
    servers: tuple[Node, ...]

    @property
    def count(self) -> int:
        return len(self.tiers)

    @classmethod
    def from_allocation(cls, allocation) -> "VmIndex":
        tiers: list[str] = []
        servers: list[Node] = []
        for server, counts in sorted(
            allocation.iter_server_placements(), key=lambda x: x[0].node_id
        ):
            for tier, count in sorted(counts.items()):
                tiers.extend([tier] * count)
                servers.extend([server] * count)
        return cls(tuple(tiers), tuple(servers))


def sample_admissible_matrix(
    tag: Tag, index: VmIndex, rng: np.random.Generator, *, intensity: float = 1.0
) -> np.ndarray:
    """A random VM-rate matrix consistent with the TAG's guarantees.

    For each edge ``(u, v)`` every u-VM spreads at most ``S_e *
    intensity`` over the v-VMs and every v-VM accepts at most ``R_e *
    intensity``; the per-edge matrix is scaled down until both sides'
    caps hold (the tenant cannot demand more than its guarantees).
    Self-loops are handled the same way among the tier's VMs.
    """
    if not 0.0 <= intensity <= 1.0:
        raise SimulationError("intensity must be in [0, 1]")
    n = index.count
    members: dict[str, list[int]] = defaultdict(list)
    for vm, tier in enumerate(index.tiers):
        members[tier].append(vm)
    matrix = np.zeros((n, n))
    for edge in tag.iter_edges():
        sources = members.get(edge.src, [])
        if edge.is_self_loop:
            destinations = sources
        else:
            destinations = members.get(edge.dst, [])
        if not sources or not destinations:
            continue
        block = rng.random((len(sources), len(destinations)))
        if edge.is_self_loop and len(sources) > 1:
            np.fill_diagonal(block, 0.0)
        elif edge.is_self_loop:
            continue
        # Scale rows to the send cap, then columns to the receive cap.
        row_sums = block.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        block = block / row_sums * edge.send * intensity
        col_sums = block.sum(axis=0, keepdims=True)
        over = np.maximum(col_sums / max(edge.recv * intensity, 1e-12), 1.0)
        block = block / over
        for i, src_vm in enumerate(sources):
            for j, dst_vm in enumerate(destinations):
                if src_vm != dst_vm:
                    matrix[src_vm, dst_vm] += block[i, j]
    return matrix


def link_loads(
    index: VmIndex, matrix: np.ndarray
) -> dict[int, tuple[float, float]]:
    """Per-uplink ``(up, down)`` load when the matrix crosses the tree."""
    loads: dict[int, list[float]] = defaultdict(lambda: [0.0, 0.0])
    n = index.count
    for src in range(n):
        for dst in range(n):
            rate = matrix[src, dst]
            if rate <= 0.0:
                continue
            src_server = index.servers[src]
            dst_server = index.servers[dst]
            if src_server is dst_server:
                continue
            src_ancestors: dict[int, Node] = {}
            node: Node | None = src_server
            while node is not None:
                src_ancestors[node.node_id] = node
                node = node.parent
            # Destination side up to (excluding) the LCA: down direction.
            node = dst_server
            while node is not None and node.node_id not in src_ancestors:
                loads[node.node_id][1] += rate
                node = node.parent
            lca_id = node.node_id if node is not None else None
            # Source side up to (excluding) the LCA: up direction.
            node = src_server
            while node is not None and node.node_id != lca_id:
                loads[node.node_id][0] += rate
                node = node.parent
    return {k: (v[0], v[1]) for k, v in loads.items()}


def validate_allocation(
    allocation, *, samples: int = 5, seed: int = 0, tolerance: float = EPSILON
) -> None:
    """Assert the allocation's reservations cover random admissible traffic.

    Raises ``AssertionError`` naming the first overloaded uplink.
    ``tolerance`` defaults to the repo-wide capacity epsilon (so the
    validator and the ledger agree on what "fits"); callers may widen it
    per use.
    """
    index = VmIndex.from_allocation(allocation)
    if index.count == 0:
        return
    rng = np.random.default_rng(seed)
    topology = allocation.ledger.topology
    for _ in range(samples):
        matrix = sample_admissible_matrix(allocation.tag, index, rng)
        for node_id, (up, down) in link_loads(index, matrix).items():
            node = topology.node(node_id)
            reserved = allocation.reserved_on(node)
            assert up <= reserved.out + tolerance, (
                f"uplink {node.name}: traffic {up:.3f} exceeds the "
                f"reservation {reserved.out:.3f}"
            )
            assert down <= reserved.into + tolerance, (
                f"downlink {node.name}: traffic {down:.3f} exceeds the "
                f"reservation {reserved.into:.3f}"
            )
