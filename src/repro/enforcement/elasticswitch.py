"""ElasticSwitch-style guarantee enforcement, hose-mode and TAG-mode (§5.2).

ElasticSwitch [7] enforces hose-model guarantees with two layers:

* **Guarantee Partitioning (GP)** — each VM's hose guarantee is divided
  among its currently-active communication pairs, max-min fairly.  We
  model GP exactly as max-min over *virtual guarantee links*: each VM
  contributes a send-hose link (capacity = send guarantee) and a
  receive-hose link (capacity = receive guarantee), and a pair's
  guarantee is its max-min rate through both endpoints' hoses.

* **Rate Allocation (RA, work conservation)** — pairs may exceed their
  guarantees when spare capacity exists.  We model the steady state as
  guarantee rates plus a max-min division of the residual physical
  capacity (TCP-like greedy flows).

The TAG patch (§5.2, "30 lines of code") changes only which virtual hose
a pair belongs to: in TAG mode every TAG edge gets its *own* per-VM
send/receive hoses, so intra-tier C2 traffic cannot crowd out the C1->C2
trunk guarantee — the whole point of Fig. 13.

Both phases run on the vectorized :mod:`repro.enforcement.maxmin`
kernel.  :func:`build_enforcement_problem` interns the virtual hoses and
physical links into dense integer ids exactly once, producing an
:class:`EnforcementProblem` whose incidence matrices both max-min passes
(and the dynamics control loop's transmit model) reuse — no per-call
link-tuple hashing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.tag import Tag
from repro.enforcement.maxmin import MaxMinProblem, solve_maxmin
from repro.errors import EnforcementError

__all__ = [
    "EnforcementProblem",
    "EnforcementResult",
    "PairFlow",
    "build_enforcement_problem",
    "enforce",
    "solve_enforcement",
]


@dataclass(frozen=True)
class PairFlow:
    """An active VM pair: tier names, VM indices, physical links crossed.

    ``demand`` models the sending application's offered load (TCP flows
    offer infinite demand).
    """

    src_tier: str
    src_index: int
    dst_tier: str
    dst_index: int
    links: tuple[object, ...]
    demand: float = math.inf

    @property
    def src_vm(self) -> tuple[str, int]:
        return (self.src_tier, self.src_index)

    @property
    def dst_vm(self) -> tuple[str, int]:
        return (self.dst_tier, self.dst_index)


@dataclass(frozen=True)
class EnforcementResult:
    """Per-flow guarantees and final (work-conserving) throughputs."""

    guarantees: tuple[float, ...]
    rates: tuple[float, ...]


@dataclass(frozen=True)
class EnforcementProblem:
    """One flow set's pre-indexed GP + RA structure.

    ``guarantee`` bounds each flow by its virtual send/receive hoses and
    the reserved share of the physical links it crosses; the physical
    entry arrays (one entry per crossing, CSR-style) drive work
    conservation and the dynamics transmit model.  ``flow_phys_ids``
    keeps each flow's physical link ids in crossing order so the
    residual subtraction replays the scalar arithmetic exactly
    (bit-identical Fig. 13 payloads).
    """

    guarantee: MaxMinProblem
    phys_entry_flow: np.ndarray
    phys_entry_link: np.ndarray
    phys_capacities: np.ndarray
    demands: np.ndarray
    flow_phys_ids: tuple[tuple[int, ...], ...]


def build_enforcement_problem(
    tag: Tag,
    flows: Sequence[PairFlow],
    capacities: dict[object, float],
    *,
    mode: str = "tag",
    headroom: float = 0.1,
) -> EnforcementProblem:
    """Intern one flow set's virtual hoses + physical links to dense ids."""
    if mode not in ("tag", "hose"):
        raise EnforcementError(f"mode must be 'tag' or 'hose', got {mode!r}")
    if not 0 <= headroom < 1:
        raise EnforcementError(f"headroom must be in [0, 1), got {headroom!r}")
    virtual_index: dict[object, int] = {}
    virtual_caps: list[float] = []
    phys_index: dict[object, int] = {}
    phys_caps: list[float] = []
    # The guarantee incidence and the physical incidence are emitted
    # directly as CSR entry pairs; intermediate per-flow rows exist only
    # as the small reusable locals below.
    g_entry_flow: list[int] = []
    g_entry_link: list[int] = []
    phys_entry_flow: list[int] = []
    phys_entry_link: list[int] = []
    flow_phys_ids: list[tuple[int, ...]] = []
    # Flows overwhelmingly share tier pairs (Fig. 13 has hundreds of
    # C2->C2 senders), so edge lookups and hose demands memoize per
    # tier pair / tier instead of resolving per flow.
    edge_cache: dict[tuple[str, str], object] = {}
    hose_cache: dict[str, tuple[float, float]] = {}

    for flow_index, flow in enumerate(flows):
        if flow.demand < 0:
            raise EnforcementError(
                f"flow limit must be >= 0, got {flow.demand}"
            )
        src_tier = flow.src_tier
        dst_tier = flow.dst_tier
        tier_pair = (src_tier, dst_tier)
        edge = edge_cache.get(tier_pair)
        if edge is None:
            if src_tier == dst_tier:
                edge = tag.self_loop(src_tier)
            else:
                edge = tag.edge(src_tier, dst_tier)
            if edge is None:
                raise EnforcementError(
                    f"no TAG guarantee covers flow {flow.src_vm} -> "
                    f"{flow.dst_vm}"
                )
            edge_cache[tier_pair] = edge
        if mode == "tag":
            send_key = ("snd", src_tier, flow.src_index, edge.src, edge.dst)
            recv_key = ("rcv", dst_tier, flow.dst_index, edge.src, edge.dst)
            send_cap = edge.send
            recv_cap = edge.recv
        else:
            send_hose = hose_cache.get(src_tier)
            if send_hose is None:
                send_hose = hose_cache[src_tier] = tag.per_vm_demand(src_tier)
            recv_hose = hose_cache.get(dst_tier)
            if recv_hose is None:
                recv_hose = hose_cache[dst_tier] = tag.per_vm_demand(dst_tier)
            send_key = ("snd", src_tier, flow.src_index)
            recv_key = ("rcv", dst_tier, flow.dst_index)
            send_cap = send_hose[0]
            recv_cap = recv_hose[1]
        send = virtual_index.get(send_key)
        if send is None:
            send = virtual_index[send_key] = len(virtual_caps)
            virtual_caps.append(send_cap)
        recv = virtual_index.get(recv_key)
        if recv is None:
            recv = virtual_index[recv_key] = len(virtual_caps)
            virtual_caps.append(recv_cap)
        g_entry_flow.append(flow_index)
        g_entry_link.append(send)
        g_entry_flow.append(flow_index)
        g_entry_link.append(recv)
        # The guarantee phase is additionally bounded by the reserved
        # share of the physical links the flow crosses.
        phys_row: list[int] = []
        for link in flow.links:
            phys_id = phys_index.get(link)
            if phys_id is None:
                phys_id = phys_index[link] = len(phys_caps)
                phys_caps.append(capacities[link])
                virtual_index[("phys-gp", link)] = len(virtual_caps)
                virtual_caps.append(capacities[link] * (1.0 - headroom))
            phys_row.append(phys_id)
            g_entry_flow.append(flow_index)
            g_entry_link.append(virtual_index[("phys-gp", link)])
            phys_entry_flow.append(flow_index)
            phys_entry_link.append(phys_id)
        flow_phys_ids.append(tuple(phys_row))

    demands = np.asarray([flow.demand for flow in flows], dtype=np.float64)
    guarantee = MaxMinProblem(
        np.asarray(g_entry_flow, dtype=np.intp),
        np.asarray(g_entry_link, dtype=np.intp),
        demands,
        np.asarray(virtual_caps, dtype=np.float64),
    )
    return EnforcementProblem(
        guarantee=guarantee,
        phys_entry_flow=np.asarray(phys_entry_flow, dtype=np.intp),
        phys_entry_link=np.asarray(phys_entry_link, dtype=np.intp),
        phys_capacities=np.asarray(phys_caps, dtype=np.float64),
        demands=demands,
        flow_phys_ids=tuple(flow_phys_ids),
    )


def solve_enforcement(problem: EnforcementProblem) -> EnforcementResult:
    """GP + work-conserving RA on a pre-built :class:`EnforcementProblem`."""
    guarantees = solve_maxmin(problem.guarantee)

    # Work conservation: divide residual physical capacity max-min among
    # flows that still have demand beyond their guarantee.  The residual
    # is subtracted flow-by-flow in crossing order (not one mat-vec) so
    # the float arithmetic matches the scalar reference bit-for-bit.
    residual = problem.phys_capacities.copy()
    for phys_row, guarantee in zip(problem.flow_phys_ids, guarantees):
        for phys_id in phys_row:
            residual[phys_id] -= guarantee
    residual = np.where(residual > 0.0, residual, 0.0)
    extra_limits = np.where(
        problem.demands - guarantees > 0.0, problem.demands - guarantees, 0.0
    )
    extras = solve_maxmin(
        MaxMinProblem(
            problem.phys_entry_flow,
            problem.phys_entry_link,
            extra_limits,
            residual,
        )
    )
    rates = tuple(g + e for g, e in zip(guarantees, extras))
    return EnforcementResult(guarantees=tuple(guarantees), rates=rates)


def enforce(
    tag: Tag,
    flows: Sequence[PairFlow],
    capacities: dict[object, float],
    *,
    mode: str = "tag",
    headroom: float = 0.1,
) -> EnforcementResult:
    """Compute guarantee partitions and work-conserving rates.

    ``mode='tag'`` partitions per TAG edge (the paper's patch);
    ``mode='hose'`` collapses each VM's guarantees into a single hose
    (the baseline that fails in Fig. 4 / Fig. 13).  ``headroom`` is the
    fraction of each physical link left unreserved by admission control
    (§5.2 leaves 10%); it bounds the guarantee phase, not work
    conservation.
    """
    return solve_enforcement(
        build_enforcement_problem(
            tag, flows, capacities, mode=mode, headroom=headroom
        )
    )
