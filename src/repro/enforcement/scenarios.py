"""Testbed scenarios for the enforcement prototype (Figs. 4 and 13).

Both scenarios share one physical shape: several sender VMs, one receiver
VM ``Z`` behind a single bottleneck link.  Senders' access links are
provisioned so the receiver's downlink is the only constraint, exactly as
in the paper's 1 Gbps testbed experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.tag import Tag
from repro.enforcement.elasticswitch import EnforcementResult, PairFlow, enforce

__all__ = ["Fig13Point", "fig13_scenario", "fig4_scenario"]

_BOTTLENECK = "into-Z"


@dataclass(frozen=True)
class Fig13Point:
    """One x-axis point of Fig. 13(b)."""

    senders_in_c2: int
    x_to_z: float
    c2_to_z: float


def fig13_scenario(
    senders_in_c2: int,
    *,
    mode: str = "tag",
    guarantee: float = 450.0,
    bottleneck: float = 1000.0,
    headroom: float = 0.1,
) -> Fig13Point:
    """The Fig. 13 experiment: does intra-C2 traffic crowd out X -> Z?

    Two tiers C1, C2; B1 = B2 = Bin2 = ``guarantee``; VM Z in C2 receives
    TCP traffic from VM X in C1 and from ``senders_in_c2`` VMs of its own
    tier, all through a 1 Gbps bottleneck.
    """
    tag = Tag("fig13")
    tag.add_component("C1", size=1)
    tag.add_component("C2", size=max(2, senders_in_c2 + 1))
    tag.add_edge("C1", "C2", send=guarantee, recv=guarantee)
    tag.add_self_loop("C2", guarantee)

    capacities: dict[object, float] = {_BOTTLENECK: bottleneck}
    flows = [
        PairFlow("C1", 0, "C2", 0, links=(_BOTTLENECK,), demand=math.inf)
    ]
    for sender in range(senders_in_c2):
        flows.append(
            PairFlow(
                "C2", sender + 1, "C2", 0, links=(_BOTTLENECK,), demand=math.inf
            )
        )
    result = enforce(tag, flows, capacities, mode=mode, headroom=headroom)
    x_rate = result.rates[0]
    c2_rate = sum(result.rates[1:])
    return Fig13Point(senders_in_c2=senders_in_c2, x_to_z=x_rate, c2_to_z=c2_rate)


@dataclass(frozen=True)
class Fig4Outcome:
    """Throughput of the logic VM's two traffic classes under congestion."""

    web_to_logic: float
    db_to_logic: float
    web_guarantee_met: bool


def fig4_scenario(
    *,
    mode: str,
    web_senders: int = 2,
    db_senders: int = 2,
    b1: float = 500.0,
    b2: float = 100.0,
    bottleneck: float = 600.0,
) -> Fig4Outcome:
    """The Fig. 4 motivation: hose cannot protect web -> logic.

    The business-logic VM has guarantees B1 = 500 from the web tier and
    B2 = 100 from the DB tier; its bottleneck is exactly B1 + B2.  Both
    tiers blast at full speed.  With the hose model the 600 Mbps hose is
    split TCP-style across all senders and the web tier cannot reach 500;
    with TAG the two guarantees are isolated.
    """
    tag = Tag("fig4")
    tag.add_component("web", size=web_senders)
    tag.add_component("logic", size=1)
    tag.add_component("db", size=db_senders)
    tag.add_edge("web", "logic", send=b1, recv=b1)
    tag.add_edge("db", "logic", send=b2, recv=b2)

    capacities: dict[object, float] = {_BOTTLENECK: bottleneck}
    flows = [
        PairFlow("web", i, "logic", 0, links=(_BOTTLENECK,), demand=math.inf)
        for i in range(web_senders)
    ] + [
        PairFlow("db", i, "logic", 0, links=(_BOTTLENECK,), demand=math.inf)
        for i in range(db_senders)
    ]
    result = enforce(tag, flows, capacities, mode=mode, headroom=0.0)
    web_rate = sum(result.rates[:web_senders])
    db_rate = sum(result.rates[web_senders:])
    return Fig4Outcome(
        web_to_logic=web_rate,
        db_to_logic=db_rate,
        web_guarantee_met=web_rate >= b1 * 0.99,
    )
