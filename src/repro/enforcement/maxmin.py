"""Vectorized progressive-filling max-min allocation (enforcement substrate).

The classic water-filling algorithm over a set of flows sharing capacity
links, with optional per-flow rate limits and demands.  Used twice by the
ElasticSwitch model: once over *virtual* guarantee links (guarantee
partitioning) and once over physical links (work-conserving rate
allocation), and once more to model TCP's own max-min behaviour.

The public :func:`maxmin_rates` surface is unchanged from the scalar
implementation (frozen under ``benchmarks/_legacy/maxmin.py``), but the
engine underneath is rebuilt on arrays: link ids are interned to dense
integers **once**, the flow×link incidence becomes sparse CSR-style
entry arrays (one entry per crossing, so multiplicity is preserved),
and each progressive-filling round computes the per-link user counts
with one weighted ``bincount``, the binding increment with two
reductions, and the frozen set with boolean masks — O(crossings) per
round.  The freezing and tie semantics — a link at residual
``<= CONVERGENCE_EPSILON`` freezes every flow crossing it, a flow within
epsilon of its limit freezes itself, and a stalled round freezes
everything — are exactly the scalar kernel's, and the floating-point
operations are element-for-element identical, so the rates are
bit-identical to the legacy code (a lockstep property test pins this).

Callers that already know their link structure (ElasticSwitch's
guarantee partitioning) can skip the hashing entirely: build a
:class:`MaxMinProblem` from integer link rows and call
:func:`solve_maxmin` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.constants import CONVERGENCE_EPSILON
from repro.errors import EnforcementError
from repro.obs import core as _obs

__all__ = ["FlowSpec", "MaxMinProblem", "maxmin_rates", "solve_maxmin"]

LinkId = Hashable


@dataclass(frozen=True)
class FlowSpec:
    """One flow: the links it crosses, and an optional demand/rate limit."""

    links: tuple[LinkId, ...]
    limit: float = math.inf

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise EnforcementError(f"flow limit must be >= 0, got {self.limit}")


class MaxMinProblem:
    """An indexed water-filling instance over dense integer link ids.

    The flow×link incidence is stored sparse, as parallel *entry*
    arrays — ``entry_flow[k]`` crosses ``entry_link[k]`` (one entry per
    crossing, so a flow crossing a link twice consumes two shares, as
    in the scalar kernel) — which keeps every per-round reduction
    O(crossings) instead of O(flows × links).  ``limits`` are the
    per-flow rate caps (``inf`` = unbounded), ``capacities`` the
    per-link capacities; only links actually crossed by some flow need
    to exist — absent links cannot bind.
    """

    __slots__ = (
        "entry_flow",
        "entry_link",
        "limits",
        "capacities",
        "has_links",
        "n_flows",
        "n_links",
    )

    def __init__(
        self,
        entry_flow: np.ndarray,
        entry_link: np.ndarray,
        limits: np.ndarray,
        capacities: np.ndarray,
    ) -> None:
        if np.any(capacities < 0):
            raise EnforcementError("negative link capacity")
        self.entry_flow = entry_flow
        self.entry_link = entry_link
        self.limits = limits
        self.capacities = capacities
        self.n_flows = len(limits)
        self.n_links = len(capacities)
        self.has_links = (
            np.bincount(entry_flow, minlength=self.n_flows) > 0
        )

    @classmethod
    def from_links(
        cls,
        flow_links: Sequence[Sequence[int]],
        limits: Sequence[float],
        capacities: Sequence[float],
    ) -> "MaxMinProblem":
        """Build the entry arrays from per-flow integer link rows."""
        entry_flow: list[int] = []
        entry_link: list[int] = []
        for flow_index, links in enumerate(flow_links):
            for link in links:
                entry_flow.append(flow_index)
                entry_link.append(link)
        return cls(
            np.asarray(entry_flow, dtype=np.intp),
            np.asarray(entry_link, dtype=np.intp),
            np.asarray(limits, dtype=np.float64),
            np.asarray(capacities, dtype=np.float64),
        )


def solve_maxmin(problem: MaxMinProblem) -> list[float]:
    """Max-min fair rates for an indexed :class:`MaxMinProblem`.

    Progressive filling: raise all unfrozen flows together; at each step
    the binding constraint is either a link reaching capacity (freezing
    every flow crossing it) or a flow reaching its limit.
    """
    limits = problem.limits
    entry_flow = problem.entry_flow
    entry_link = problem.entry_link
    n_flows = problem.n_flows
    n_links = problem.n_links
    has_links = problem.has_links
    rates = np.zeros(n_flows)
    # A flow crossing no links is only bounded by its own (finite) demand.
    demand_bound = ~has_links & np.isfinite(limits)
    rates[demand_bound] = limits[demand_bound]
    active = has_links & (limits > 0.0)
    residual = problem.capacities.astype(np.float64, copy=True)
    epsilon = CONVERGENCE_EPSILON
    rounds = 0

    while active.any():
        rounds += 1
        # Smallest increment that freezes something: a link filling up
        # (equal shares among its current users) or a flow's own limit.
        entry_active = active[entry_flow].astype(np.float64)
        users = np.bincount(
            entry_link, weights=entry_active, minlength=n_links
        )
        used = users > 0.0
        shares = np.divide(
            residual, users, out=np.full_like(residual, math.inf), where=used
        )
        increment = float(shares.min()) if shares.size else math.inf
        increment = min(increment, float((limits - rates)[active].min()))
        if math.isinf(increment):
            # No finite constraint: flows are unbounded; treat as an error
            # because enforcement always runs on finite bottlenecks.
            raise EnforcementError("max-min with unbounded flows and links")
        increment = max(0.0, increment)
        rates[active] += increment
        residual -= increment * users
        dead = used & (residual <= epsilon)
        dead_crossings = np.bincount(
            entry_flow,
            weights=dead[entry_link].astype(np.float64),
            minlength=n_flows,
        )
        frozen = active & (dead_crossings > 0.0)
        frozen |= active & (limits - rates <= epsilon)
        if not frozen.any():
            # Numerical stall; freeze everything to terminate.
            frozen = active.copy()
        active &= ~frozen
    # One bump per solve (rounds tallied locally): the kernel is called
    # thousands of times per enforcement trial, so per-round counter
    # traffic would be measurable even though per-solve traffic is not.
    c = _obs.counters
    if c is not None:
        c.bump("maxmin.solves")
        c.bump("maxmin.rounds", rounds)
    return rates.tolist()


def maxmin_rates(
    flows: Sequence[FlowSpec], capacities: dict[LinkId, float]
) -> list[float]:
    """Max-min fair rates for ``flows`` over ``capacities``.

    Interns the hashable link ids into a dense :class:`MaxMinProblem`
    and hands it to :func:`solve_maxmin`.
    """
    for flow in flows:
        for link in flow.links:
            if link not in capacities:
                raise EnforcementError(f"flow references unknown link {link!r}")
    for link, capacity in capacities.items():
        if capacity < 0:
            raise EnforcementError(f"negative capacity on link {link!r}")

    index: dict[LinkId, int] = {}
    caps: list[float] = []
    flow_links: list[list[int]] = []
    for flow in flows:
        row: list[int] = []
        for link in flow.links:
            link_index = index.get(link)
            if link_index is None:
                link_index = index[link] = len(caps)
                caps.append(capacities[link])
            row.append(link_index)
        flow_links.append(row)
    problem = MaxMinProblem.from_links(
        flow_links, [flow.limit for flow in flows], caps
    )
    return solve_maxmin(problem)
