"""Guarantee-enforcement prototype: max-min flows + ElasticSwitch model."""

from repro.enforcement.dynamics import (
    DynamicsConfig,
    ElasticSwitchDynamics,
    PeriodSample,
)
from repro.enforcement.elasticswitch import EnforcementResult, PairFlow, enforce
from repro.enforcement.maxmin import FlowSpec, maxmin_rates
from repro.enforcement.scenarios import (
    Fig13Point,
    Fig4Outcome,
    fig4_scenario,
    fig13_scenario,
)

__all__ = [
    "DynamicsConfig",
    "ElasticSwitchDynamics",
    "EnforcementResult",
    "Fig13Point",
    "Fig4Outcome",
    "FlowSpec",
    "PairFlow",
    "PeriodSample",
    "enforce",
    "fig4_scenario",
    "fig13_scenario",
    "maxmin_rates",
]
