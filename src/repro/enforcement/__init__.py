"""Guarantee-enforcement prototype: max-min flows + ElasticSwitch model."""

from repro.enforcement.dynamics import (
    DynamicsConfig,
    ElasticSwitchDynamics,
    PeriodSample,
)
from repro.enforcement.elasticswitch import (
    EnforcementProblem,
    EnforcementResult,
    PairFlow,
    build_enforcement_problem,
    enforce,
    solve_enforcement,
)
from repro.enforcement.maxmin import (
    FlowSpec,
    MaxMinProblem,
    maxmin_rates,
    solve_maxmin,
)
from repro.enforcement.scenarios import (
    Fig13Point,
    Fig4Outcome,
    fig4_scenario,
    fig13_scenario,
)

__all__ = [
    "DynamicsConfig",
    "ElasticSwitchDynamics",
    "EnforcementProblem",
    "EnforcementResult",
    "Fig13Point",
    "Fig4Outcome",
    "FlowSpec",
    "MaxMinProblem",
    "PairFlow",
    "PeriodSample",
    "build_enforcement_problem",
    "enforce",
    "fig4_scenario",
    "fig13_scenario",
    "maxmin_rates",
    "solve_enforcement",
    "solve_maxmin",
]
