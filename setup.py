"""Packaging for the CloudMirror/TAG reproduction (pip-installable)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package itself.
_HERE = Path(__file__).parent
VERSION = re.search(
    r'^__version__ = "(.+?)"', (_HERE / "src" / "repro" / "__init__.py").read_text(), re.M
).group(1)
README = _HERE / "README.md"

setup(
    name="repro-cloudmirror",
    version=VERSION,
    description=(
        "Reproduction of Lee et al., 'Application-Driven Bandwidth "
        "Guarantees in Datacenters' (SIGCOMM 2014): TAG abstraction, "
        "CloudMirror placement, baselines, inference, enforcement, and a "
        "parallel scenario engine for the full evaluation."
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            # Legacy spelling from earlier revisions; same entry point.
            "repro-experiment=repro.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: System :: Networking",
        "Topic :: Scientific/Engineering",
    ],
)
