"""Packaging for the CloudMirror/TAG reproduction (pip-installable)."""

import os
import re
from pathlib import Path

from setuptools import Extension, find_packages, setup

# Single-source the version from the package itself.
_HERE = Path(__file__).parent
VERSION = re.search(
    r'^__version__ = "(.+?)"', (_HERE / "src" / "repro" / "__init__.py").read_text(), re.M
).group(1)
README = _HERE / "README.md"

# The compiled placement kernels are strictly opt-in: a plain install is
# pure Python everywhere, and `REPRO_BUILD_EXT=1 pip install -e .` builds
# the accelerated backend.  -ffp-contract=off keeps the C arithmetic
# bit-exact with CPython (no FMA contraction of the multiply-adds).
if os.environ.get("REPRO_BUILD_EXT") == "1":
    EXT_MODULES = [
        Extension(
            "repro._kernels._ckernels",
            sources=["src/repro/_kernels/_ckernels.c"],
            extra_compile_args=["-O2", "-ffp-contract=off"],
        )
    ]
else:
    EXT_MODULES = []

setup(
    name="repro-cloudmirror",
    version=VERSION,
    description=(
        "Reproduction of Lee et al., 'Application-Driven Bandwidth "
        "Guarantees in Datacenters' (SIGCOMM 2014): TAG abstraction, "
        "CloudMirror placement, baselines, inference, enforcement, and a "
        "parallel scenario engine for the full evaluation."
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "coverage"],
    },
    ext_modules=EXT_MODULES,
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            # Legacy spelling from earlier revisions; same entry point.
            "repro-experiment=repro.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: System :: Networking",
        "Topic :: Scientific/Engineering",
    ],
)
