"""Root pytest configuration: the opt-in ``slow`` marker.

Everything under ``benchmarks/`` regenerates a full paper table and is
automatically marked ``slow``; slow tests are skipped unless the run
opts in with ``--runslow`` or ``REPRO_RUN_SLOW=1``.  The tier-1 suite
(``PYTHONPATH=src python -m pytest -x -q``) therefore stays fast while
``python -m pytest --runslow benchmarks`` reproduces the paper numbers.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (the benchmark suite)",
    )


def _slow_enabled(config) -> bool:
    return bool(
        config.getoption("--runslow") or os.environ.get("REPRO_RUN_SLOW") == "1"
    )


def pytest_collection_modifyitems(config, items) -> None:
    skip_slow = pytest.mark.skip(
        reason="slow benchmark; opt in with --runslow or REPRO_RUN_SLOW=1"
    )
    run_slow = _slow_enabled(config)
    for item in items:
        if "benchmarks" in item.path.parts:
            item.add_marker(pytest.mark.slow)
        if "slow" in item.keywords and not run_slow:
            item.add_marker(skip_slow)
